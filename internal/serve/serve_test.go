package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/timeseries"
)

// buildServer trains a tiny fleet and wraps it.
func buildServer(t *testing.T) *Server {
	t.Helper()
	cfg := core.DefaultPredictorConfig()
	cfg.Window = 2
	cfg.Candidates = []core.Algorithm{core.LR}
	fp, err := core.NewFleetPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	rnd := rng.New(1)
	for _, id := range []string{"v01", "v02", "v03"} {
		u := make(timeseries.Series, 400)
		for i := range u {
			if i%7 >= 5 {
				u[i] = 0
			} else {
				u[i] = 18000 * (1 + 0.1*rnd.NormFloat64())
			}
		}
		vs, err := timeseries.Derive(id, u, 600_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := fp.AddVehicle(vs, start); err != nil {
			t.Fatal(err)
		}
	}
	statuses, err := fp.Train()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(fp, statuses)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func get(t *testing.T, srv *Server, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	rec, body := get(t, buildServer(t), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var m map[string]string
	if err := json.Unmarshal(body, &m); err != nil || m["status"] != "ok" {
		t.Fatalf("body %s err=%v", body, err)
	}
}

func TestVehicles(t *testing.T) {
	rec, body := get(t, buildServer(t), "/vehicles")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out []VehicleInfo
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d vehicles", len(out))
	}
	if out[0].ID != "v01" || out[0].Category != "old" || out[0].Strategy != "per-vehicle" {
		t.Fatalf("row 0 = %+v", out[0])
	}
}

func TestForecastEndpoint(t *testing.T) {
	srv := buildServer(t)
	rec, body := get(t, srv, "/vehicles/v02/forecast")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var f ForecastJSON
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.VehicleID != "v02" || f.DaysLeft < 0 {
		t.Fatalf("forecast = %+v", f)
	}
	if _, err := time.Parse("2006-01-02", f.DueDate); err != nil {
		t.Fatalf("due date %q not a date: %v", f.DueDate, err)
	}
}

func TestForecastUnknownVehicle(t *testing.T) {
	rec, body := get(t, buildServer(t), "/vehicles/ghost/forecast")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var m map[string]string
	if err := json.Unmarshal(body, &m); err != nil || m["error"] == "" {
		t.Fatalf("error body %s", body)
	}
}

func TestFleetForecast(t *testing.T) {
	rec, body := get(t, buildServer(t), "/fleet/forecast")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out []ForecastJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d forecasts", len(out))
	}
}

func TestPlanEndpoint(t *testing.T) {
	rec, body := get(t, buildServer(t), "/fleet/plan?capacity=1&horizon=500&maxlead=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var plan PlanJSON
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments)+len(plan.Unscheduled) != 3 {
		t.Fatalf("plan covers %d vehicles: %+v", len(plan.Assignments)+len(plan.Unscheduled), plan)
	}
	perDay := map[string]int{}
	for _, a := range plan.Assignments {
		perDay[a.Day]++
		if perDay[a.Day] > 1 {
			t.Fatalf("capacity 1 violated on %s", a.Day)
		}
	}
}

func TestPlanBadQuery(t *testing.T) {
	rec, _ := get(t, buildServer(t), "/fleet/plan?capacity=abc")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
	rec, _ = get(t, buildServer(t), "/fleet/plan?capacity=0")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("zero capacity status %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	srv := buildServer(t)
	req := httptest.NewRequest(http.MethodPost, "/vehicles", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil predictor accepted")
	}
}
