package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/timeseries"
)

// tinyFleet builds three deterministic vehicles through the derivation
// pipeline.
func tinyFleet(t testing.TB) []engine.Vehicle {
	t.Helper()
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	rnd := rng.New(1)
	var fleet []engine.Vehicle
	for _, id := range []string{"v01", "v02", "v03"} {
		u := make(timeseries.Series, 400)
		for i := range u {
			if i%7 >= 5 {
				u[i] = 0
			} else {
				u[i] = 18000 * (1 + 0.1*rnd.NormFloat64())
			}
		}
		vs, err := timeseries.Derive(id, u, 600_000)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, engine.Vehicle{Series: vs, Start: start})
	}
	return fleet
}

func testEngineConfig() engine.Config {
	cfg := core.DefaultPredictorConfig()
	cfg.Window = 2
	cfg.Candidates = []core.Algorithm{core.LR}
	cfg.ColdStartAlgorithm = core.LR
	return engine.Config{Predictor: cfg, Workers: 2}
}

// buildServer trains a tiny fleet through the engine and wraps it. The
// engine's source re-serves the same fleet, so /admin/retrain works.
func buildServer(t testing.TB) *Server {
	t.Helper()
	fleet := tinyFleet(t)
	cfg := testEngineConfig()
	cfg.Source = func(context.Context) ([]engine.Vehicle, error) { return fleet, nil }
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Retrain(context.Background(), fleet); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func do(t testing.TB, srv *Server, method, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func get(t testing.TB, srv *Server, path string) (*httptest.ResponseRecorder, []byte) {
	return do(t, srv, http.MethodGet, path)
}

func TestHealthz(t *testing.T) {
	rec, body := get(t, buildServer(t), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var m map[string]string
	if err := json.Unmarshal(body, &m); err != nil || m["status"] != "ok" {
		t.Fatalf("body %s err=%v", body, err)
	}
}

func TestVehicles(t *testing.T) {
	rec, body := get(t, buildServer(t), "/vehicles")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out []VehicleInfo
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d vehicles", len(out))
	}
	if out[0].ID != "v01" || out[0].Category != "old" || out[0].Strategy != "per-vehicle" {
		t.Fatalf("row 0 = %+v", out[0])
	}
}

func TestForecastEndpoint(t *testing.T) {
	srv := buildServer(t)
	rec, body := get(t, srv, "/vehicles/v02/forecast")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var f ForecastJSON
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatal(err)
	}
	if f.VehicleID != "v02" || f.DaysLeft < 0 {
		t.Fatalf("forecast = %+v", f)
	}
	if _, err := time.Parse("2006-01-02", f.DueDate); err != nil {
		t.Fatalf("due date %q not a date: %v", f.DueDate, err)
	}
}

func TestForecastUnknownVehicle(t *testing.T) {
	rec, body := get(t, buildServer(t), "/vehicles/ghost/forecast")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var m map[string]string
	if err := json.Unmarshal(body, &m); err != nil || m["error"] == "" {
		t.Fatalf("error body %s", body)
	}
}

func TestFleetForecast(t *testing.T) {
	rec, body := get(t, buildServer(t), "/fleet/forecast")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out FleetForecastJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Forecasts) != 3 {
		t.Fatalf("got %d forecasts", len(out.Forecasts))
	}
	if len(out.Errors) != 0 {
		t.Fatalf("unexpected forecast errors: %v", out.Errors)
	}
}

func TestPlanEndpoint(t *testing.T) {
	rec, body := get(t, buildServer(t), "/fleet/plan?capacity=1&horizon=500&maxlead=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var plan PlanJSON
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments)+len(plan.Unscheduled) != 3 {
		t.Fatalf("plan covers %d vehicles: %+v", len(plan.Assignments)+len(plan.Unscheduled), plan)
	}
	perDay := map[string]int{}
	for _, a := range plan.Assignments {
		perDay[a.Day]++
		if perDay[a.Day] > 1 {
			t.Fatalf("capacity 1 violated on %s", a.Day)
		}
	}
}

func TestPlanBadQuery(t *testing.T) {
	rec, _ := get(t, buildServer(t), "/fleet/plan?capacity=abc")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
	rec, _ = get(t, buildServer(t), "/fleet/plan?capacity=0")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("zero capacity status %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	srv := buildServer(t)
	rec, _ := do(t, srv, http.MethodPost, "/vehicles")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
	rec, _ = do(t, srv, http.MethodGet, "/admin/retrain")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/retrain status %d, want 405", rec.Code)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

// TestNotReady exercises the window between boot and the first snapshot.
func TestNotReady(t *testing.T) {
	eng, err := engine.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/vehicles", "/vehicles/v01/forecast", "/fleet/forecast", "/fleet/plan"} {
		rec, _ := get(t, srv, path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s status %d, want 503", path, rec.Code)
		}
	}
	// Liveness and status must answer even without a snapshot.
	if rec, _ := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz status %d", rec.Code)
	}
	rec, body := get(t, srv, "/admin/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status endpoint %d", rec.Code)
	}
	var st engine.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || st.Generation != 0 {
		t.Fatalf("status before training = %+v", st)
	}
}

func TestAdminStatus(t *testing.T) {
	rec, body := get(t, buildServer(t), "/admin/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var st engine.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Generation != 1 || st.Vehicles != 3 || st.Workers != 2 {
		t.Fatalf("admin status = %+v", st)
	}
}

func TestAdminRetrainWait(t *testing.T) {
	srv := buildServer(t)
	rec, body := do(t, srv, http.MethodPost, "/admin/retrain?wait=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var ack RetrainJSON
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Started || ack.Generation != 2 {
		t.Fatalf("ack = %+v", ack)
	}
	// Forecasts must still be served from the fresh snapshot.
	rec, _ = get(t, srv, "/vehicles/v01/forecast")
	if rec.Code != http.StatusOK {
		t.Fatalf("forecast after retrain: %d", rec.Code)
	}
}

func TestAdminRetrainAsync(t *testing.T) {
	srv := buildServer(t)
	// wait=0 is explicitly async, and garbage is rejected.
	if rec, body := do(t, srv, http.MethodPost, "/admin/retrain?wait=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("wait=bogus status %d: %s", rec.Code, body)
	}
	rec, body := do(t, srv, http.MethodPost, "/admin/retrain?wait=0")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if srv.engine.Status().Generation >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background retrain never landed: %+v", srv.engine.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdminRetrainConflict pins the duplicate guard: while one
// background rebuild is in flight, further kicks answer 409.
func TestAdminRetrainConflict(t *testing.T) {
	fleet := tinyFleet(t)
	release := make(chan struct{})
	cfg := testEngineConfig()
	cfg.Source = func(context.Context) ([]engine.Vehicle, error) {
		<-release
		return fleet, nil
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Retrain(context.Background(), fleet); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, srv, http.MethodPost, "/admin/retrain")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first kick: status %d body %s", rec.Code, body)
	}
	rec, body = do(t, srv, http.MethodPost, "/admin/retrain")
	if rec.Code != http.StatusConflict {
		t.Fatalf("second kick: status %d body %s, want 409", rec.Code, body)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for srv.engine.Status().Generation < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("background retrain never landed: %+v", srv.engine.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdminRetrainNoSource(t *testing.T) {
	fleet := tinyFleet(t)
	eng, err := engine.New(testEngineConfig()) // no Source
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Retrain(context.Background(), fleet); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, srv, http.MethodPost, "/admin/retrain?wait=1")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}

	// An async kick must surface the failure in /admin/status rather
	// than vanish behind the 202 — on a fresh engine, so the assertion
	// cannot be satisfied by the waited request's recorded error.
	eng2, err := engine.New(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Retrain(context.Background(), fleet); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(eng2)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ = do(t, srv2, http.MethodPost, "/admin/retrain")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async status %d, want 202", rec.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for eng2.Status().LastError == "" {
		if time.Now().After(deadline) {
			t.Fatalf("async no-source failure never reached status: %+v", eng2.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
