// Package serve exposes the trained fleet predictor as a JSON-over-HTTP
// service — the shape the paper's deployed system takes ("the data
// owner ... has decided to put the present application under
// deployment"). Endpoints:
//
//	GET /healthz                     liveness probe
//	GET /vehicles                    fleet overview (category, strategy)
//	GET /vehicles/{id}/forecast      next-maintenance forecast
//	GET /fleet/forecast              all forecasts
//	GET /fleet/plan?capacity=2&horizon=240&maxlead=7
//	                                 workshop schedule from the forecasts
//
// The handler is a plain http.Handler built on the standard library,
// so it embeds into any existing mux or server.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// Server wraps a trained FleetPredictor. It is safe for concurrent use
// as long as the predictor is not retrained while serving (the
// predictor itself is read-only after Train).
type Server struct {
	predictor *core.FleetPredictor
	statuses  map[string]core.VehicleStatus
	mux       *http.ServeMux
}

// New builds the HTTP facade over a *trained* predictor; statuses are
// the result of Train.
func New(fp *core.FleetPredictor, statuses []core.VehicleStatus) (*Server, error) {
	if fp == nil {
		return nil, errors.New("serve: nil predictor")
	}
	s := &Server{
		predictor: fp,
		statuses:  make(map[string]core.VehicleStatus, len(statuses)),
		mux:       http.NewServeMux(),
	}
	for _, st := range statuses {
		s.statuses[st.ID] = st
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /vehicles", s.handleVehicles)
	s.mux.HandleFunc("GET /vehicles/{id}/forecast", s.handleForecast)
	s.mux.HandleFunc("GET /fleet/forecast", s.handleFleetForecast)
	s.mux.HandleFunc("GET /fleet/plan", s.handlePlan)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is sent can only be logged by
	// the caller's middleware; the payloads here are plain structs that
	// cannot fail to marshal.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// VehicleInfo is the /vehicles row.
type VehicleInfo struct {
	ID       string `json:"id"`
	Category string `json:"category"`
	Strategy string `json:"strategy"`
	Model    string `json:"model"`
}

func (s *Server) handleVehicles(w http.ResponseWriter, _ *http.Request) {
	var out []VehicleInfo
	for _, id := range s.predictor.VehicleIDs() {
		st := s.statuses[id]
		out = append(out, VehicleInfo{
			ID:       id,
			Category: st.Category.String(),
			Strategy: st.Strategy,
			Model:    string(st.Algorithm),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ForecastJSON is the wire form of a core.Forecast.
type ForecastJSON struct {
	VehicleID string  `json:"vehicle_id"`
	DaysLeft  float64 `json:"days_left"`
	DueDate   string  `json:"due_date"`
	Category  string  `json:"category"`
	Strategy  string  `json:"strategy"`
}

func toJSON(f core.Forecast) ForecastJSON {
	return ForecastJSON{
		VehicleID: f.VehicleID,
		DaysLeft:  f.DaysLeft,
		DueDate:   f.DueDate.Format("2006-01-02"),
		Category:  f.Category.String(),
		Strategy:  f.Strategy,
	}
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f, err := s.predictor.Predict(id)
	if err != nil {
		if strings.Contains(err.Error(), "unknown vehicle") {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, toJSON(f))
}

func (s *Server) handleFleetForecast(w http.ResponseWriter, _ *http.Request) {
	fcs, err := s.predictor.PredictAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := make([]ForecastJSON, len(fcs))
	for i, f := range fcs {
		out[i] = toJSON(f)
	}
	writeJSON(w, http.StatusOK, out)
}

// PlanJSON is the wire form of a workshop plan.
type PlanJSON struct {
	Assignments []AssignmentJSON `json:"assignments"`
	Unscheduled []string         `json:"unscheduled,omitempty"`
}

// AssignmentJSON is one scheduled maintenance slot.
type AssignmentJSON struct {
	VehicleID string `json:"vehicle_id"`
	Day       string `json:"day"`
	LeadDays  int    `json:"lead_days"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	capacity, err := intQuery(r, "capacity", 2)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	horizon, err := intQuery(r, "horizon", 365)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	maxLead, err := intQuery(r, "maxlead", 7)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	fcs, err := s.predictor.PredictAll()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var reqs []sched.Request
	now := time.Now().UTC().Truncate(24 * time.Hour)
	for _, f := range fcs {
		due := f.DueDate
		if due.Before(now) {
			due = now
		}
		reqs = append(reqs, sched.Request{VehicleID: f.VehicleID, Due: due, Uncertainty: 2})
	}
	plan, err := sched.Schedule(reqs, sched.Config{Capacity: capacity, Start: now, Horizon: horizon, MaxLead: maxLead})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := PlanJSON{Unscheduled: plan.Unschedulable}
	for _, a := range plan.Assignments {
		out.Assignments = append(out.Assignments, AssignmentJSON{
			VehicleID: a.VehicleID,
			Day:       a.Day.Format("2006-01-02"),
			LeadDays:  a.LeadDays,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func intQuery(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("serve: query parameter %q must be an integer, got %q", key, raw)
	}
	return v, nil
}
