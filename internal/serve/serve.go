// Package serve exposes the fleet engine as a JSON-over-HTTP service —
// the shape the paper's deployed system takes ("the data owner ... has
// decided to put the present application under deployment"). Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /vehicles                    fleet overview (category, strategy)
//	GET  /vehicles/{id}/forecast      next-maintenance forecast
//	GET  /fleet/forecast              all forecasts
//	GET  /fleet/plan?capacity=2&horizon=240&maxlead=7
//	                                  workshop schedule from the forecasts
//	POST /telemetry                   batched per-vehicle daily-usage
//	                                  reports into the ingest store
//	                                  (when one is configured)
//	POST /admin/retrain[?wait=1][&full=1]
//	                                  re-ingest telemetry, rebuild in the
//	                                  background, swap snapshots; full=1
//	                                  disables incremental model reuse
//	GET  /admin/status                engine state (generation, workers, ...)
//	GET  /metrics                     Prometheus-style text metrics
//	                                  (ingest, WAL, retrains, response cache)
//	GET  /admin/ingest                ingest-store stats incl. WAL/durability
//	                                  (when configured)
//	GET  /internal/donors             this shard's old-vehicle series for
//	                                  the cluster donor exchange (when an
//	                                  ingest store is configured)
//
// Every read endpoint serves from the engine's current immutable
// snapshot: one atomic pointer load, no locks, no model math (forecasts
// are precomputed at snapshot-build time). A retrain builds the next
// snapshot off to the side and swaps it in when done, so reads are
// never blocked and never observe a half-trained fleet. Retrains are
// incremental — only vehicles whose telemetry changed retrain; the
// rest carry their models forward (see internal/engine).
//
// Data routes are generation-keyed: response bytes (per-vehicle,
// whole-fleet, and plan) are marshaled once per snapshot generation
// and then served from cache, every 200 carries a strong ETag derived
// from the generation plus an X-Fleet-Generation echo, and
// If-None-Match is honored with 304s — a polling dashboard costs ~0
// bytes between retrains (see readcache.go).
//
// The handler is a plain http.Handler built on the standard library,
// so it embeds into any existing mux or server.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Options configures the optional live-ingestion surface of a Server.
type Options struct {
	// Ingest, when set, mounts POST /telemetry and GET /admin/ingest on
	// the given store. The engine's Source should be the same store's
	// Fleet method so retrains pick the ingested telemetry up.
	Ingest *ingest.Store
	// RetrainDirty, when > 0, kicks a background incremental retrain as
	// soon as at least this many vehicles have changed since the last
	// kick. 0 leaves retraining to /admin/retrain and the periodic
	// loop.
	RetrainDirty int
	// Telemetry guards POST /telemetry (rate limit + bearer auth). In a
	// sharded deployment the guard belongs on the router — shards stay
	// trusted-internal — so cluster shard servers leave this zero.
	Telemetry GuardOptions
	// Logger receives the server's structured request logs; nil uses
	// slog.Default(). Every handled request logs one line carrying its
	// trace ID (adopted from X-Fleet-Trace or minted), so router and
	// shard logs join on the ID. Probe routes (/healthz, /readyz,
	// /metrics) log at Debug to keep Info greppable.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
}

// Server wraps a fleet engine. All handlers are safe for arbitrary
// concurrency, including concurrently with retrains.
type Server struct {
	engine *engine.Engine
	mux    *http.ServeMux
	log    *slog.Logger

	// routeHist times every handled request per route pattern
	// (fleet_http_request_seconds); children are resolved once at route
	// registration, so the per-request cost is one Observe.
	routeHist *obs.Family

	ingest       *ingest.Store
	retrainDirty int
	telemetry    *guard
	// doors counts telemetry traffic per ingest door (JSON, binary
	// HTTP, UDP) with a sampled allocs-per-report estimate each; udp is
	// the optional datagram door (nil unless ServeUDP was started).
	doors [numDoors]doorStats
	udp   *UDPDoor
	// kickMu guards the dirty-threshold retrain policy: lastKickSeq is
	// the store sequence the latest auto-retrain was kicked at;
	// prevKickSeq is the baseline to roll back to if that build fails,
	// so a failed build does not permanently consume its dirty set.
	kickMu      sync.Mutex
	lastKickSeq uint64
	prevKickSeq uint64
	// kickGen is the snapshot generation observed when the latest kick
	// started; a later generation means some build has since succeeded
	// (and, re-reading the same source, covered the kick's data).
	kickGen uint64

	// cacheHits/cacheMisses count per-vehicle forecast responses served
	// from the snapshot's response cache vs marshaled fresh (exported on
	// GET /metrics). A retrain swaps in a cold cache, so a miss burst
	// after each generation is expected.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	// The whole-fleet artifact and plan caches get the same accounting
	// (readcache.go); notModified counts conditional GETs answered 304.
	fleetForecastCacheHits   atomic.Uint64
	fleetForecastCacheMisses atomic.Uint64
	vehiclesCacheHits        atomic.Uint64
	vehiclesCacheMisses      atomic.Uint64
	planCacheHits            atomic.Uint64
	planCacheMisses          atomic.Uint64
	notModified              atomic.Uint64
}

// New builds the HTTP facade over an engine. The engine does not need a
// snapshot yet — endpoints answer 503 until the first build lands — so
// a server can accept traffic while the initial training runs.
func New(eng *engine.Engine) (*Server, error) {
	return NewWithOptions(eng, Options{})
}

// NewWithOptions is New plus the live-ingestion surface.
func NewWithOptions(eng *engine.Engine, opts Options) (*Server, error) {
	if eng == nil {
		return nil, errors.New("serve: nil engine")
	}
	if opts.RetrainDirty > 0 && opts.Ingest == nil {
		return nil, errors.New("serve: RetrainDirty needs an ingest store")
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		engine:       eng,
		mux:          http.NewServeMux(),
		log:          logger,
		routeHist:    newRouteFamily(),
		ingest:       opts.Ingest,
		retrainDirty: opts.RetrainDirty,
		telemetry:    newGuard(opts.Telemetry),
	}
	if s.ingest != nil {
		// Baseline the dirty-threshold policy at the store's current
		// state: boot-seeded telemetry is what the initial training
		// covers, not pending changes the threshold should count.
		s.lastKickSeq = s.ingest.Seq()
		s.prevKickSeq = s.lastKickSeq
	}
	s.route("GET /healthz", probeRoute, s.handleHealth)
	s.route("GET /readyz", probeRoute, s.handleReady)
	s.route("GET /vehicles", dataRoute, s.handleVehicles)
	s.route("GET /vehicles/{id}/forecast", dataRoute, s.handleForecast)
	s.route("GET /fleet/forecast", dataRoute, s.handleFleetForecast)
	s.route("GET /fleet/plan", dataRoute, s.handlePlan)
	s.route("POST /admin/retrain", dataRoute, s.handleRetrain)
	s.route("GET /admin/status", dataRoute, s.handleStatus)
	s.route("GET /metrics", probeRoute, s.handleMetrics)
	if s.ingest != nil {
		s.route("POST /telemetry", dataRoute, s.handleTelemetry)
		s.route("GET /admin/ingest", dataRoute, s.handleIngestStats)
		s.route("GET "+cluster.DonorsPath, dataRoute, s.handleDonors)
	}
	if opts.Pprof {
		obs.RegisterPprof(s.mux)
	}
	return s, nil
}

// newRouteFamily builds the per-route latency family both the single
// server and the cluster router export.
func newRouteFamily() *obs.Family {
	return obs.NewHistogramFamily("fleet_http_request_seconds",
		"Handled HTTP request latency per route pattern.", obs.LatencyBuckets, "route")
}

// Route classes: probe routes (health/readiness/scrape) log at Debug so
// an orchestrator's poll loop does not drown the Info log.
const (
	dataRoute  = false
	probeRoute = true
)

// route registers one handler wrapped in the observability middleware:
// adopt-or-mint the request trace ID (echoed on the response), time the
// request into the route's latency histogram, and emit one structured
// log line. The histogram child is resolved here, once, so the
// per-request record path is allocation-free.
func (s *Server) route(pattern string, probe bool, h http.HandlerFunc) {
	hist := s.routeHist.With(pattern)
	level := slog.LevelInfo
	if probe {
		level = slog.LevelDebug
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		r, trace := obs.EnsureTrace(w, r)
		t0 := time.Now()
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(&sw, r)
		dur := time.Since(t0)
		hist.Observe(dur.Seconds())
		s.log.LogAttrs(r.Context(), level, "http request",
			slog.String("trace", trace),
			slog.String("route", pattern),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("seconds", dur.Seconds()))
	})
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is sent can only be logged by
	// the caller's middleware; the payloads here are plain structs that
	// cannot fail to marshal.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// snapshot fetches the current snapshot, answering 503 when the engine
// has not finished its first build.
func (s *Server) snapshot(w http.ResponseWriter) (*engine.Snapshot, bool) {
	snap := s.engine.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, noSnapshotMsg)
		return nil, false
	}
	return snap, true
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyJSON is the GET /readyz response.
type ReadyJSON struct {
	Ready      bool   `json:"ready"`
	Generation uint64 `json:"generation,omitempty"`
}

// handleReady is the readiness probe: 200 once a snapshot (trained or
// restored from a spill) is live, 503 while the process can only serve
// health checks. Liveness (/healthz) stays separate so an orchestrator
// does not kill a pod that is merely still cold-training.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if snap := s.engine.Snapshot(); snap != nil {
		writeJSON(w, http.StatusOK, ReadyJSON{Ready: true, Generation: snap.Generation})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, ReadyJSON{Ready: false})
}

// VehicleInfo is the /vehicles row.
type VehicleInfo struct {
	ID       string `json:"id"`
	Category string `json:"category"`
	Strategy string `json:"strategy"`
	Model    string `json:"model"`
	// Error is set for vehicles whose training failed; the rest of the
	// fleet serves normally around them.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleVehicles(w http.ResponseWriter, r *http.Request) {
	status, etag, body := s.VehiclesResponse()
	if status != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(body)
		return
	}
	s.writeCached(w, r, etag[1:len(etag)-1], etag, body)
}

// ForecastJSON is the wire form of a core.Forecast.
type ForecastJSON struct {
	VehicleID string  `json:"vehicle_id"`
	DaysLeft  float64 `json:"days_left"`
	DueDate   string  `json:"due_date"`
	Category  string  `json:"category"`
	Strategy  string  `json:"strategy"`
}

func toJSON(f core.Forecast) ForecastJSON {
	return ForecastJSON{
		VehicleID: f.VehicleID,
		DaysLeft:  f.DaysLeft,
		DueDate:   f.DueDate.Format("2006-01-02"),
		Category:  f.Category.String(),
		Strategy:  f.Strategy,
	}
}

// encodeJSON marshals exactly like writeJSON does on the wire —
// json.NewEncoder.Encode, trailing newline included — so cached bytes
// are indistinguishable from a fresh marshal.
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(v)
	return buf.Bytes()
}

// ForecastResponse resolves GET /vehicles/{id}/forecast to its status
// code, entity tag, and response body without touching an
// http.ResponseWriter. The 200 path serves (and populates) the current
// snapshot's response cache, so a hot vehicle is marshaled once per
// generation and then served as raw bytes; the cluster router calls
// this directly for in-process shards, skipping the whole HTTP round
// trip. Error responses carry no tag — they are uncacheable. The
// returned bytes are shared — callers must write, not mutate, them.
func (s *Server) ForecastResponse(id string) (status int, etag string, body []byte) {
	snap := s.engine.Snapshot()
	if snap == nil {
		return http.StatusServiceUnavailable, "", encodeJSON(map[string]string{"error": noSnapshotMsg})
	}
	if b, ok := snap.CachedResponse(id); ok {
		s.cacheHits.Add(1)
		return http.StatusOK, snap.ETag(), b
	}
	// Precomputed at snapshot build: the hot path does no model math.
	if f, ok := snap.ForecastByID[id]; ok {
		s.cacheMisses.Add(1)
		b := encodeJSON(toJSON(f))
		snap.StoreCachedResponse(id, b)
		return http.StatusOK, snap.ETag(), b
	}
	// Error responses stay uncached: failed-forecast vehicles are cold
	// paths, and unknown IDs are attacker-controlled cache keys.
	if msg, ok := snap.ForecastErrors[id]; ok {
		return http.StatusInternalServerError, "", encodeJSON(map[string]string{"error": msg})
	}
	return http.StatusNotFound, "", encodeJSON(map[string]string{"error": fmt.Sprintf("unknown vehicle %q", id)})
}

// CacheStats reports the response-cache hit/miss counters.
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.cacheHits.Load(), s.cacheMisses.Load()
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	status, etag, body := s.ForecastResponse(r.PathValue("id"))
	if status == http.StatusOK {
		s.writeCached(w, r, etag[1:len(etag)-1], etag, body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// FleetForecastJSON is the /fleet/forecast response. Errors lists the
// vehicles no forecast could be precomputed for, so a fleet-wide read
// never silently loses a vehicle.
type FleetForecastJSON struct {
	Forecasts []ForecastJSON    `json:"forecasts"`
	Errors    map[string]string `json:"errors,omitempty"`
}

func (s *Server) handleFleetForecast(w http.ResponseWriter, r *http.Request) {
	status, etag, body := s.FleetForecastResponse()
	if status != http.StatusOK {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(body)
		return
	}
	s.writeCached(w, r, etag[1:len(etag)-1], etag, body)
}

// PlanJSON is the wire form of a workshop plan.
type PlanJSON struct {
	Assignments []AssignmentJSON `json:"assignments"`
	Unscheduled []string         `json:"unscheduled,omitempty"`
}

// AssignmentJSON is one scheduled maintenance slot.
type AssignmentJSON struct {
	VehicleID string `json:"vehicle_id"`
	Day       string `json:"day"`
	LeadDays  int    `json:"lead_days"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w)
	if !ok {
		return
	}
	p, err := parsePlanParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The scheduling day is computed once and folded into the cache key,
	// so identical same-day queries hit cached bytes and the key rolls
	// over at UTC midnight by construction.
	now, day := planDay()
	key := p.cacheKey(day)
	etag := planETag(snap.ETag(), key)
	if body, ok := snap.CachedPlan(key); ok {
		s.planCacheHits.Add(1)
		s.writeCached(w, r, snap.GenerationID(), etag, body)
		return
	}
	reqs := make([]sched.Request, 0, len(snap.Forecasts))
	for _, f := range snap.Forecasts {
		due := f.DueDate
		if due.Before(now) {
			due = now
		}
		reqs = append(reqs, sched.Request{VehicleID: f.VehicleID, Due: due, Uncertainty: 2})
	}
	body, err := buildPlanBody(reqs, snap.ForecastErrors, p, now)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.planCacheMisses.Add(1)
	snap.StorePlan(key, body)
	s.writeCached(w, r, snap.GenerationID(), etag, body)
}

// RetrainJSON acknowledges a retrain request.
type RetrainJSON struct {
	// Started reports whether a rebuild was kicked off.
	Started bool `json:"started"`
	// Generation is the snapshot generation at response time — for a
	// waited retrain, the fresh build's generation.
	Generation uint64 `json:"generation"`
}

// handleRetrain re-ingests telemetry through the engine's fleet source
// and rebuilds the snapshot. By default the rebuild runs in the
// background and 202 is returned immediately; with ?wait=1 the handler
// blocks until the new snapshot is live (or the build fails). Rebuilds
// are incremental — unchanged vehicles carry their models forward —
// unless ?full=1 requests the from-scratch escape hatch. Either way at
// most one handler-initiated rebuild is in flight: further kicks
// answer 409 instead of queueing redundant trainings.
func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	wait, err := boolQuery(r, "wait")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	full, err := boolQuery(r, "full")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if wait {
		// Deliberately detached from the request context: a client
		// disconnect or timeout must not abort (and discard) a
		// fleet-wide rebuild that is already underway.
		snap, err := s.engine.TryRetrainFromSource(context.Background(), full)
		switch {
		case errors.Is(err, engine.ErrRetrainInFlight):
			writeError(w, http.StatusConflict, err.Error())
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, RetrainJSON{Started: true, Generation: snap.Generation})
		}
		return
	}
	// The engine's single-flight covers every initiator — handler
	// kicks and the periodic retrain loop alike. Failures of the
	// detached rebuild land in /admin/status.
	if !s.engine.BeginRetrainFromSource(r.Context(), full) {
		writeError(w, http.StatusConflict, engine.ErrRetrainInFlight.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, RetrainJSON{Started: true, Generation: s.engine.Status().Generation})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Status())
}

// ReportJSON is the wire form of one telemetry report.
type ReportJSON struct {
	Vehicle string  `json:"vehicle"`
	Date    string  `json:"date"` // "2006-01-02"
	Seconds float64 `json:"seconds"`
}

// TelemetryRequest is the POST /telemetry body.
type TelemetryRequest struct {
	Reports []ReportJSON `json:"reports"`
}

// TelemetryResponse is the per-batch accept/reject report plus whether
// the batch tripped the dirty-retrain threshold.
type TelemetryResponse struct {
	ingest.BatchResult
	RetrainStarted bool `json:"retrain_started"`
}

// maxTelemetryBody bounds a telemetry batch (32 MiB ≈ several years of
// daily reports for a thousand-vehicle fleet).
const maxTelemetryBody = 32 << 20

// maxTelemetryReports bounds the per-batch report count independently
// of body size.
const maxTelemetryReports = 500_000

// maybeKickRetrain starts a background incremental retrain when the
// number of vehicles changed since the last kick reaches the
// configured threshold. The sequence point only advances when a
// rebuild actually starts, so dirtiness observed while a build is in
// flight re-triggers on the next batch instead of getting lost — and
// if a kicked build *fails*, the baseline rolls back so the failed
// build's dirty set counts again instead of being silently consumed.
func (s *Server) maybeKickRetrain(ctx context.Context) bool {
	if s.retrainDirty <= 0 {
		return false
	}
	s.kickMu.Lock()
	defer s.kickMu.Unlock()
	st := s.engine.Status()
	if !st.Retraining && st.LastError != "" && st.Generation == s.kickGen && s.lastKickSeq > s.prevKickSeq {
		// No build has succeeded since the kick (the generation is
		// unchanged) and the last one failed: restore the pre-kick
		// baseline so the vehicles that kick covered re-trigger on
		// this or a later batch. Any successful build from the shared
		// source would have covered them already.
		s.lastKickSeq = s.prevKickSeq
	}
	if len(s.ingest.DirtySince(s.lastKickSeq)) < s.retrainDirty {
		return false
	}
	seq := s.ingest.Seq()
	if !s.engine.BeginRetrainFromSource(ctx, false) {
		return false
	}
	s.prevKickSeq, s.lastKickSeq = s.lastKickSeq, seq
	s.kickGen = st.Generation
	return true
}

// IngestStatsJSON is the GET /admin/ingest response: store stats plus
// the dirty set the retrain threshold is currently judging.
type IngestStatsJSON struct {
	ingest.Stats
	// RetrainDirtyThreshold echoes the configured threshold (0 =
	// disabled).
	RetrainDirtyThreshold int `json:"retrain_dirty_threshold"`
	// DirtySinceLastRetrain lists vehicles changed since the last
	// threshold-triggered retrain kick.
	DirtySinceLastRetrain []string `json:"dirty_since_last_retrain,omitempty"`
	// Doors breaks telemetry traffic down per ingest door (JSON,
	// binary HTTP, UDP), each with its sampled allocs-per-report.
	Doors []DoorStatsJSON `json:"doors"`
	// UDP describes the datagram door (nil unless one is listening).
	UDP *UDPStatsJSON `json:"udp,omitempty"`
}

// handleDonors serves the donor-series exchange (shard-to-shard; the
// cluster router does not expose it): this shard's old vehicles' raw
// contiguous daily series, sorted by ID. Peers prepare the series
// through the same §3 pipeline and register them via core.AddDonor, so
// their cold-start donor pools stay fleet-wide — and bit-identical to
// an unsharded build — without any raw-telemetry replication (see
// cluster.DonorExchangeSource).
func (s *Server) handleDonors(w http.ResponseWriter, r *http.Request) {
	// Fleet prepares (with caching) the stored vehicles; categorization
	// runs on the prepared series exactly as training's partitioning
	// does.
	fleet, err := s.ingest.Fleet(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("serve: deriving donor series: %v", err))
		return
	}
	out := DonorSet{Vehicles: []cluster.DonorSeries{}}
	for _, v := range fleet {
		if core.Categorize(v.Series) != core.Old {
			continue
		}
		start, u, ok := s.ingest.RawSeries(v.Series.ID)
		if !ok {
			continue
		}
		out.Vehicles = append(out.Vehicles, cluster.DonorSeries{
			ID:    v.Series.ID,
			Start: start.Format("2006-01-02"),
			U:     u,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// DonorSet aliases the cluster wire type so API consumers of this
// package see the whole shard surface in one place.
type DonorSet = cluster.DonorSet

func (s *Server) handleIngestStats(w http.ResponseWriter, _ *http.Request) {
	s.kickMu.Lock()
	lastKick := s.lastKickSeq
	s.kickMu.Unlock()
	out := IngestStatsJSON{
		Stats:                 s.ingest.Stats(),
		RetrainDirtyThreshold: s.retrainDirty,
		DirtySinceLastRetrain: s.ingest.DirtySince(lastKick),
		Doors:                 s.doorStatsJSON(),
	}
	if s.udp != nil {
		st := s.udp.Stats()
		out.UDP = &st
	}
	writeJSON(w, http.StatusOK, out)
}

func boolQuery(r *http.Request, key string) (bool, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("serve: query parameter %q must be a boolean, got %q", key, raw)
	}
	return v, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func intQuery(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("serve: query parameter %q must be an integer, got %q", key, raw)
	}
	return v, nil
}
