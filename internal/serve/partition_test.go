package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/wal"
)

// partitionedCluster is the multi-process topology in miniature:
// per-shard stores holding only ring-owned vehicles, real HTTP between
// router and shards (NewRemoteBackend) and between shards (the donor
// exchange), exactly as `fleetserver -join` wires it.
type partitionedCluster struct {
	router *Router
	ring   *cluster.Ring
	stores map[string]*ingest.Store
	shards map[string]*engine.Engine
	httpds []*httptest.Server
}

// lateURLs lets shard engines be built before the peer HTTP servers
// exist: the donor-exchange source resolves the URL list at fetch time.
type lateURLs struct{ urls []string }

func buildPartitionedCluster(t testing.TB, vehicles, shards, retrainDirty int) *partitionedCluster {
	t.Helper()
	names := cluster.ShardNames(shards)
	ring, err := cluster.NewRingOf(0, names...)
	if err != nil {
		t.Fatal(err)
	}
	fleet := genVehicles(t, vehicles)
	start := fleet[0].Start

	pc := &partitionedCluster{
		ring:   ring,
		stores: make(map[string]*ingest.Store, shards),
		shards: make(map[string]*engine.Engine, shards),
	}
	late := make(map[string]*lateURLs, shards)
	var backends []ShardBackend
	for _, name := range names {
		store := ingest.New(600_000)
		var reports []ingest.Report
		for _, v := range fleet {
			if ring.Owner(v.Series.ID) != name {
				continue
			}
			for d, sec := range v.Series.U {
				reports = append(reports, ingest.Report{VehicleID: v.Series.ID, Date: start.AddDate(0, 0, d), Seconds: sec})
			}
		}
		if len(reports) > 0 {
			if res, _ := store.UpsertBatch(reports); res.Rejected != 0 {
				t.Fatalf("seeding shard %s rejected %d reports", name, res.Rejected)
			}
		}
		pc.stores[name] = store

		lu := &lateURLs{}
		late[name] = lu
		cfg := testEngineConfig()
		own := store.Fleet
		cfg.Source = func(ctx context.Context) ([]engine.Vehicle, error) {
			return cluster.DonorExchangeSource(own, lu.urls, 600_000, nil)(ctx)
		}
		eng, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pc.shards[name] = eng

		srv, err := NewWithOptions(eng, Options{Ingest: store, RetrainDirty: retrainDirty})
		if err != nil {
			t.Fatal(err)
		}
		httpd := httptest.NewServer(srv)
		t.Cleanup(httpd.Close)
		pc.httpds = append(pc.httpds, httpd)
		backends = append(backends, NewRemoteBackend(name, httpd.URL, nil))
	}
	// Close the loop: every shard now knows its peers' URLs.
	for i, name := range names {
		for j := range names {
			if i != j {
				late[name].urls = append(late[name].urls, pc.httpds[j].URL)
			}
		}
	}
	for _, name := range names {
		if _, err := pc.shards[name].RetrainFromSource(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	pc.router, err = NewRouter(ring, backends, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

// TestPartitionedClusterBitIdentical: the acceptance contract over the
// real HTTP surface — a 3-shard cluster whose stores partition the raw
// telemetry ~1/N (no broadcast, donors over the wire) serves a
// /fleet/forecast byte-identical to one unsharded server over the
// union of the telemetry.
func TestPartitionedClusterBitIdentical(t *testing.T) {
	const vehicles = 9
	pc := buildPartitionedCluster(t, vehicles, 3, 0)

	// Raw telemetry genuinely partitions: stores are disjoint, none
	// holds the fleet, and they sum to it.
	total := 0
	for name, store := range pc.stores {
		n := len(store.Vehicles())
		if n == vehicles {
			t.Fatalf("shard %s stores all %d vehicles — broadcast not removed", name, n)
		}
		total += n
		for _, id := range store.Vehicles() {
			if pc.ring.Owner(id) != name {
				t.Fatalf("shard %s stores %s owned by %s", name, id, pc.ring.Owner(id))
			}
		}
	}
	if total != vehicles {
		t.Fatalf("stores hold %d vehicles total, want %d", total, vehicles)
	}

	// Unsharded reference over the union.
	fullStore := ingest.New(600_000)
	fleet := genVehicles(t, vehicles)
	var reports []ingest.Report
	for _, v := range fleet {
		for d, sec := range v.Series.U {
			reports = append(reports, ingest.Report{VehicleID: v.Series.ID, Date: fleet[0].Start.AddDate(0, 0, d), Seconds: sec})
		}
	}
	if _, err := fullStore.UpsertBatch(reports); err != nil {
		t.Fatal(err)
	}
	cfg := testEngineConfig()
	cfg.Source = fullStore.Fleet
	single, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.RetrainFromSource(context.Background()); err != nil {
		t.Fatal(err)
	}
	singleSrv, err := New(single)
	if err != nil {
		t.Fatal(err)
	}

	wantRec := httptest.NewRecorder()
	singleSrv.ServeHTTP(wantRec, httptest.NewRequest(http.MethodGet, "/fleet/forecast", nil))
	rec, body := routerGet(t, pc.router, "/fleet/forecast")
	if rec.Code != http.StatusOK {
		t.Fatalf("router /fleet/forecast = %d: %s", rec.Code, body)
	}
	if got, want := string(body), wantRec.Body.String(); got != want {
		t.Fatalf("partitioned cluster differs from unsharded:\ncluster %s\nsingle  %s", got, want)
	}
}

// TestRouterTelemetryPartitioned: a batch POSTed at the router reaches
// each vehicle's owner shard only — non-owner stores never see the
// vehicle — and the merged response carries the full accept/changed
// accounting.
func TestRouterTelemetryPartitioned(t *testing.T) {
	const vehicles = 6
	pc := buildPartitionedCluster(t, vehicles, 3, 0)

	day := "2016-05-01"
	var rows []string
	for i := 1; i <= vehicles; i++ {
		rows = append(rows, fmt.Sprintf(`{"vehicle":"v%02d","date":%q,"seconds":12345}`, i, day))
	}
	req := httptest.NewRequest(http.MethodPost, "/telemetry", strings.NewReader(`{"reports":[`+strings.Join(rows, ",")+`]}`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	pc.router.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /telemetry = %d: %s", rec.Code, rec.Body)
	}
	var tr TelemetryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Accepted != vehicles || tr.Changed != vehicles || tr.Rejected != 0 {
		t.Fatalf("merged result %+v, want %d accepted/changed", tr.BatchResult, vehicles)
	}
	if len(tr.Vehicles) != vehicles {
		t.Fatalf("per-vehicle results cover %d vehicles, want %d", len(tr.Vehicles), vehicles)
	}

	// Ownership check: each report landed exactly in its owner's store.
	for i := 1; i <= vehicles; i++ {
		id := fmt.Sprintf("v%02d", i)
		owner := pc.ring.Owner(id)
		for name, store := range pc.stores {
			_, stored := store.Hash(id)
			if name == owner && !stored {
				t.Errorf("owner %s lost vehicle %s", name, id)
			}
			if name != owner && stored {
				t.Errorf("non-owner %s stores vehicle %s (broadcast leak)", name, id)
			}
		}
	}
}

// TestReplayedWALDoesNotKickRetrain is satellite coverage for the
// dirty-accounting fix: a server booted over a WAL-recovered store
// with a restored snapshot must not treat replayed batches as fresh
// dirtiness — no phantom retrain kick, an empty dirty set, and the
// first real retrain reuses every covered vehicle.
func TestReplayedWALDoesNotKickRetrain(t *testing.T) {
	dir := t.TempDir()
	fleet := tinyFleet(t)
	start := fleet[0].Start

	// First life: durable store, trained snapshot, crash (no Close).
	store1, err := ingest.OpenDurable(600_000, ingest.DurableOptions{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var reports []ingest.Report
	for _, v := range fleet {
		for d, sec := range v.Series.U {
			reports = append(reports, ingest.Report{VehicleID: v.Series.ID, Date: start.AddDate(0, 0, d), Seconds: sec})
		}
	}
	if _, err := store1.UpsertBatch(reports); err != nil {
		t.Fatal(err)
	}
	cfg := testEngineConfig()
	cfg.Source = store1.Fleet
	eng1, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := eng1.RetrainFromSource(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second life: WAL replay reconstructs the store; the persisted
	// snapshot restores (snapstore in production, directly here).
	store2, err := ingest.OpenDurable(600_000, ingest.DurableOptions{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cfg2 := testEngineConfig()
	cfg2.Source = store2.Fleet
	eng2, err := engine.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(eng2, Options{Ingest: store2, RetrainDirty: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The replayed content is not fresh dirtiness.
	rec, body := doGet(t, srv, "/admin/ingest")
	if rec.Code != http.StatusOK {
		t.Fatalf("/admin/ingest = %d", rec.Code)
	}
	var st IngestStatsJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.DirtySinceLastRetrain) != 0 {
		t.Fatalf("replayed batches count as dirty: %v", st.DirtySinceLastRetrain)
	}
	if st.WAL == nil || st.WAL.ReplayRecords == 0 {
		t.Fatalf("WAL stats missing from /admin/ingest: %+v", st.WAL)
	}

	// An idempotent re-delivery must not kick a retrain.
	batch, err := json.Marshal(TelemetryRequest{Reports: []ReportJSON{{
		Vehicle: fleet[0].Series.ID,
		Date:    start.Format("2006-01-02"),
		Seconds: fleet[0].Series.U[0],
	}}})
	if err != nil {
		t.Fatal(err)
	}
	rec, body = postJSON(t, srv, "/telemetry", string(batch))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /telemetry = %d: %s", rec.Code, body)
	}
	var tres TelemetryResponse
	if err := json.Unmarshal(body, &tres); err != nil {
		t.Fatal(err)
	}
	if tres.Changed != 0 || tres.RetrainStarted {
		t.Fatalf("no-op redelivery after replay: %+v (retrain=%v), want no change, no retrain", tres.BatchResult, tres.RetrainStarted)
	}

	// The reconcile retrain (what fleetserver kicks at boot) reuses
	// every snapshot-covered vehicle: incremental, never a cold train.
	snap2, err := eng2.RetrainFromSource(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Retrained != 0 || snap2.Reused != len(fleet) {
		t.Fatalf("reconcile retrain reused=%d retrained=%d, want %d/0", snap2.Reused, snap2.Retrained, len(fleet))
	}
}

// TestDonorsEndpoint: the shard-internal donor endpoint serves exactly
// the old vehicles, sorted, with their raw contiguous series.
func TestDonorsEndpoint(t *testing.T) {
	srv, _, store := ingestServer(t, 0)
	rec, body := doGet(t, srv, cluster.DonorsPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", cluster.DonorsPath, rec.Code, body)
	}
	var set DonorSet
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatal(err)
	}
	if len(set.Vehicles) == 0 {
		t.Fatal("no donors served for an old fleet")
	}
	for i, d := range set.Vehicles {
		if i > 0 && set.Vehicles[i-1].ID >= d.ID {
			t.Fatalf("donors not sorted: %s before %s", set.Vehicles[i-1].ID, d.ID)
		}
		start, u, ok := store.RawSeries(d.ID)
		if !ok {
			t.Fatalf("donor %s not in store", d.ID)
		}
		if d.Start != start.Format("2006-01-02") || len(d.U) != len(u) {
			t.Fatalf("donor %s wire mismatch", d.ID)
		}
	}
}

func doGet(t testing.TB, srv *Server, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}
