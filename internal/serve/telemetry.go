// The telemetry doors: POST /telemetry speaks JSON (the original wire
// form) or, switched by Content-Type, the binary frame format from
// internal/ingest — and udp.go adds the ack-less datagram door on the
// same store. This file holds the shared door accounting (batches,
// reports, rejected, and a sampled allocations-per-report estimate per
// door, so the JSON-vs-binary gap is measured in production, not
// guessed from benchmarks) plus the two HTTP door handlers.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/metrics"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/wal"
)

// Door indexes into Server.doors.
const (
	doorJSON = iota
	doorBinary
	doorUDP
	numDoors
)

// doorNames spells the door label on /metrics and /admin/ingest.
var doorNames = [numDoors]string{"json", "binary", "udp"}

// allocSampleEvery: one batch in this many pays two runtime/metrics
// reads (a few microseconds) to estimate the door's decode+apply
// allocation cost. Concurrent batches on other goroutines can inflate
// a sample, so the estimate is an upper bound under load.
const allocSampleEvery = 64

// doorStats counts one ingest door's traffic. All fields are atomics;
// the struct is updated on the hot path without locks.
type doorStats struct {
	batches  atomic.Uint64
	reports  atomic.Uint64 // accepted + rejected
	rejected atomic.Uint64

	sampledBatches atomic.Uint64
	sampledReports atomic.Uint64
	sampledAllocs  atomic.Uint64
}

// begin opens one batch observation: it bumps the batch counter and,
// on sampled batches, snapshots the heap allocation counter.
func (d *doorStats) begin() (sampled bool, allocs0 uint64) {
	if d.batches.Add(1)%allocSampleEvery == 1 {
		return true, heapAllocObjects()
	}
	return false, 0
}

// finish records one batch's outcome; on sampled batches it closes the
// allocation window begin opened.
func (d *doorStats) finish(res ingest.BatchResult, sampled bool, allocs0 uint64) {
	n := uint64(res.Accepted + res.Rejected)
	d.reports.Add(n)
	d.rejected.Add(uint64(res.Rejected))
	if sampled {
		d.sampledBatches.Add(1)
		d.sampledReports.Add(n)
		d.sampledAllocs.Add(heapAllocObjects() - allocs0)
	}
}

// allocsPerReport is the sampled decode+apply allocation estimate; -1
// until the first sampled batch with at least one report lands.
func (d *doorStats) allocsPerReport() float64 {
	r := d.sampledReports.Load()
	if r == 0 {
		return -1
	}
	return float64(d.sampledAllocs.Load()) / float64(r)
}

// heapAllocObjects reads the cumulative heap-allocated object count —
// cheap (no stop-the-world), unlike runtime.ReadMemStats.
func heapAllocObjects() uint64 {
	s := [1]metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s[:])
	return s[0].Value.Uint64()
}

// DoorStatsJSON is one door's slice of GET /admin/ingest.
type DoorStatsJSON struct {
	Door     string `json:"door"`
	Batches  uint64 `json:"batches"`
	Reports  uint64 `json:"reports"`
	Rejected uint64 `json:"rejected"`
	// AllocsPerReport estimates heap allocations per report on this
	// door's decode+apply path, sampled every allocSampleEvery batches
	// (-1 before the first sample).
	AllocsPerReport float64 `json:"allocs_per_report"`
}

// doorStatsJSON snapshots every door, in doorNames order.
func (s *Server) doorStatsJSON() []DoorStatsJSON {
	out := make([]DoorStatsJSON, numDoors)
	for i := range s.doors {
		d := &s.doors[i]
		out[i] = DoorStatsJSON{
			Door:            doorNames[i],
			Batches:         d.batches.Load(),
			Reports:         d.reports.Load(),
			Rejected:        d.rejected.Load(),
			AllocsPerReport: d.allocsPerReport(),
		}
	}
	return out
}

// isBinaryTelemetry reports whether the request selected the binary
// frame format (exactly, or with media-type parameters appended).
func isBinaryTelemetry(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == ingest.ContentTypeBinary || strings.HasPrefix(ct, ingest.ContentTypeBinary+";")
}

// handleTelemetry ingests one batch of per-vehicle daily-usage
// reports, JSON or binary by Content-Type. Validation is per report: a
// malformed body (JSON syntax, frame or wire-structure error) is
// rejected wholesale with 400, but individually invalid reports only
// mark their own vehicle's slice of the accept/reject response — one
// bad sensor must not discard a whole fleet upload. Re-delivering a
// batch is harmless (idempotent upserts).
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if !s.telemetry.admit(w, r) {
		return
	}
	if isBinaryTelemetry(r) {
		s.handleTelemetryBinary(w, r)
		return
	}
	s.handleTelemetryJSON(w, r)
}

// telemetryScratch pools the JSON door's per-batch buffers: the body
// bytes, the decoded wire batch (json.Unmarshal reuses the Reports
// backing array) and the converted store batch. Pooling these cuts the
// door's allocations to the per-report strings JSON inherently costs.
type telemetryScratch struct {
	body    bytes.Buffer
	req     TelemetryRequest
	reports []ingest.Report
}

var telemetryScratchPool = sync.Pool{New: func() any { return new(telemetryScratch) }}

// Scratch buffers beyond these caps are dropped instead of pooled, so
// one huge batch does not pin its buffers for the process lifetime.
const (
	poolBodyCap    = 1 << 20
	poolReportsCap = 1 << 16
)

func (sc *telemetryScratch) release() {
	if sc.body.Cap() > poolBodyCap || cap(sc.req.Reports) > poolReportsCap || cap(sc.reports) > poolReportsCap {
		return
	}
	telemetryScratchPool.Put(sc)
}

func (s *Server) handleTelemetryJSON(w http.ResponseWriter, r *http.Request) {
	d := &s.doors[doorJSON]
	sampled, allocs0 := d.begin()

	r.Body = http.MaxBytesReader(w, r.Body, maxTelemetryBody)
	sc := telemetryScratchPool.Get().(*telemetryScratch)
	defer sc.release()
	sc.body.Reset()
	if _, err := sc.body.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("serve: telemetry batch exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: reading telemetry batch: %v", err))
		return
	}
	sc.req.Reports = sc.req.Reports[:0]
	if err := json.Unmarshal(sc.body.Bytes(), &sc.req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: decoding telemetry batch: %v", err))
		return
	}
	if len(sc.req.Reports) > maxTelemetryReports {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("serve: batch of %d reports exceeds the %d-report limit", len(sc.req.Reports), maxTelemetryReports))
		return
	}
	sc.reports = appendReportsFromJSON(sc.reports[:0], sc.req.Reports)
	res, err := s.ingest.UpsertBatch(sc.reports)
	d.finish(res, sampled, allocs0)
	if err != nil {
		// The batch may be applied in memory but is not durably
		// journaled: do not acknowledge it. Idempotent upserts make the
		// client's retry safe.
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := TelemetryResponse{BatchResult: res}
	// Check the dirty threshold even when *this* batch changed nothing:
	// with a shared store behind several shard servers (the in-process
	// cluster), the router upserts a batch once and scatters the shards
	// an *empty* batch — but every shard must still notice the store
	// moved and judge its own retrain trigger.
	out.RetrainStarted = s.maybeKickRetrain(r.Context())
	writeJSON(w, http.StatusOK, out)
}

// frameScratchPool holds body buffers for the binary door; the frame
// is parsed in place, so one pooled buffer is the door's only per-batch
// byte allocation.
var frameScratchPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// handleTelemetryBinary ingests one wal-framed binary wire batch (see
// internal/ingest's wire format). The ack is the same TelemetryResponse
// the JSON door sends, except the per-vehicle breakdown is included
// only when something was rejected — at line rate an all-accepted ack
// carries totals, not a map re-listing every vehicle.
func (s *Server) handleTelemetryBinary(w http.ResponseWriter, r *http.Request) {
	d := &s.doors[doorBinary]
	sampled, allocs0 := d.begin()

	r.Body = http.MaxBytesReader(w, r.Body, maxTelemetryBody)
	buf := frameScratchPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= poolBodyCap {
			frameScratchPool.Put(buf)
		}
	}()
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("serve: telemetry batch exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: reading telemetry batch: %v", err))
		return
	}
	body := buf.Bytes()
	payload, n, err := wal.ParseFrame(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: parsing telemetry frame: %v", err))
		return
	}
	if n != len(body) {
		writeError(w, http.StatusBadRequest, "serve: trailing bytes after telemetry frame")
		return
	}
	res, err := s.ingest.UpsertBinary(payload, maxTelemetryReports)
	d.finish(res, sampled, allocs0)
	if err != nil {
		switch {
		case errors.Is(err, ingest.ErrBatchTooLarge):
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.Is(err, ingest.ErrWireTruncated), errors.Is(err, ingest.ErrWireTrailing), errors.Is(err, ingest.ErrWireVersion):
			writeError(w, http.StatusBadRequest, err.Error())
		default:
			// Journaling failed after application: same non-ack contract
			// as the JSON door.
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	out := TelemetryResponse{BatchResult: res}
	if res.Rejected == 0 {
		out.Vehicles = nil
	}
	out.RetrainStarted = s.maybeKickRetrain(r.Context())
	writeJSON(w, http.StatusOK, out)
}

// appendReportsFromJSON converts wire reports to store reports into a
// reusable slice. A bad date leaves Date zero; the store rejects the
// report with a per-report error, keeping one bookkeeping path.
func appendReportsFromJSON(dst []ingest.Report, in []ReportJSON) []ingest.Report {
	for _, rj := range in {
		rep := ingest.Report{VehicleID: rj.Vehicle, Seconds: rj.Seconds}
		if d, err := time.Parse("2006-01-02", rj.Date); err == nil {
			rep.Date = d
		}
		dst = append(dst, rep)
	}
	return dst
}
