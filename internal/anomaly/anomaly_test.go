package anomaly

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/telematics"
)

func healthyReport(at time.Time, work float64) telematics.SummaryReport {
	return telematics.SummaryReport{
		VehicleID:      "v1",
		PeriodStart:    at,
		PeriodEnd:      at.Add(10 * time.Minute),
		WorkSeconds:    work,
		AvgEngineSpeed: 1900,
		MinOilPressure: 350,
		MaxCoolantTemp: 92,
	}
}

var t0 = time.Date(2019, 6, 3, 8, 0, 0, 0, time.UTC)

func TestCheckLimitsFlagsViolations(t *testing.T) {
	low := healthyReport(t0, 500)
	low.MinOilPressure = 90
	hot := healthyReport(t0.Add(10*time.Minute), 500)
	hot.MaxCoolantTemp = 118
	ok := healthyReport(t0.Add(20*time.Minute), 500)

	findings := CheckLimits([]telematics.SummaryReport{low, hot, ok}, DefaultLimits())
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if findings[0].Kind != OilPressureLow || findings[1].Kind != CoolantOverheat {
		t.Fatalf("kinds wrong: %v", findings)
	}
	if findings[0].String() == "" {
		t.Fatal("empty finding string")
	}
}

func TestCheckLimitsSkipsIdleReports(t *testing.T) {
	idle := healthyReport(t0, 0)
	idle.MinOilPressure = 10 // engine off: low pressure is normal
	if findings := CheckLimits([]telematics.SummaryReport{idle}, DefaultLimits()); len(findings) != 0 {
		t.Fatalf("idle report flagged: %v", findings)
	}
}

func TestDetectDriftFindsInjectedFault(t *testing.T) {
	rnd := rng.New(1)
	var reports []telematics.SummaryReport
	for i := 0; i < 120; i++ {
		r := healthyReport(t0.Add(time.Duration(i)*10*time.Minute), 550)
		r.AvgEngineSpeed += rnd.NormFloat64() * 20
		r.MinOilPressure += rnd.NormFloat64() * 8
		r.MaxCoolantTemp += rnd.NormFloat64() * 1.5
		if i >= 100 {
			// Slipping oil pressure: still above the hard limit but far
			// outside the vehicle's own distribution.
			r.MinOilPressure -= 120
		}
		reports = append(reports, r)
	}
	if hard := CheckLimits(reports, DefaultLimits()); len(hard) != 0 {
		t.Fatalf("fault should stay above hard limits, got %v", hard)
	}
	findings, err := DetectDrift(reports, DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	oil := 0
	for _, f := range findings {
		if f.Signal == "min_oil_pressure" {
			oil++
			if f.At.Before(t0.Add(100 * 10 * time.Minute)) {
				t.Fatalf("drift flagged before the fault was injected: %v", f)
			}
		}
	}
	if oil < 10 {
		t.Fatalf("only %d oil-pressure drift findings for a 20-report fault", oil)
	}
}

func TestDetectDriftQuietOnHealthyData(t *testing.T) {
	rnd := rng.New(2)
	var reports []telematics.SummaryReport
	for i := 0; i < 200; i++ {
		r := healthyReport(t0.Add(time.Duration(i)*10*time.Minute), 550)
		r.AvgEngineSpeed += rnd.NormFloat64() * 20
		r.MinOilPressure += rnd.NormFloat64() * 8
		r.MaxCoolantTemp += rnd.NormFloat64() * 1.5
		reports = append(reports, r)
	}
	findings, err := DetectDrift(reports, DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Gaussian noise at threshold 4 robust-z: false positives must be
	// rare (< 2 % of reports × signals).
	if len(findings) > 10 {
		t.Fatalf("%d false positives on healthy data", len(findings))
	}
}

func TestDetectDriftOutlierDoesNotPoisonReference(t *testing.T) {
	rnd := rng.New(3)
	var reports []telematics.SummaryReport
	for i := 0; i < 80; i++ {
		r := healthyReport(t0.Add(time.Duration(i)*10*time.Minute), 550)
		r.MaxCoolantTemp += rnd.NormFloat64()
		if i == 40 {
			r.MaxCoolantTemp = 104.9 // single spike below the hard limit
		}
		reports = append(reports, r)
	}
	findings, err := DetectDrift(reports, DefaultDriftConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The spike itself is flagged; subsequent healthy reports are not
	// (median/MAD absorbs a single excluded outlier).
	after := 0
	for _, f := range findings {
		if f.Signal == "max_coolant_temp" && f.At.After(t0.Add(41*10*time.Minute)) {
			after++
		}
	}
	if after > 0 {
		t.Fatalf("%d healthy reports flagged after the spike", after)
	}
}

func TestDetectDriftValidation(t *testing.T) {
	if _, err := DetectDrift(nil, DefaultDriftConfig()); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMedianMAD(t *testing.T) {
	med, mad := medianMAD([]float64{1, 2, 3, 4, 100})
	if med != 3 {
		t.Fatalf("median = %v, want 3", med)
	}
	// Deviations: {2, 1, 0, 1, 97} → sorted {0,1,1,2,97} → MAD 1.
	if mad != 1 {
		t.Fatalf("MAD = %v, want 1", mad)
	}
	med, mad = medianMAD([]float64{1, 3})
	if med != 2 || mad != 1 {
		t.Fatalf("even-length median/MAD = %v/%v", med, mad)
	}
	if q := quantile(nil); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if !math.IsNaN(math.NaN()) {
		t.Fatal("unreachable")
	}
}

func TestEndToEndWithFrameGenerator(t *testing.T) {
	// Full acquisition path: generated frames → controller → detector.
	gen, err := telematics.NewFrameGen("v9", telematics.DefaultFrameGenConfig(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := telematics.NewController("v9", 5*time.Minute, 100)
	if err != nil {
		t.Fatal(err)
	}
	gen.Session(t0, 30*time.Minute, func(f telematics.Frame) bool {
		if err := ctrl.Ingest(f); err != nil {
			t.Fatal(err)
		}
		return true
	})
	reports := ctrl.Flush()
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	if findings := CheckLimits(reports, DefaultLimits()); len(findings) != 0 {
		t.Fatalf("healthy generated session flagged: %v", findings)
	}
}
