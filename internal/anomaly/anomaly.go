// Package anomaly implements component-malfunction detection over the
// controller's summary reports — the paper's introduction lists
// "identify[ing] malfunctioning of specific vehicle components" as the
// third CAN-data analysis the platform supports (refs [6, 15]).
//
// Two detectors are provided: a hard physical-limit detector for
// out-of-range signal excursions (oil pressure, coolant temperature),
// and a robust rolling z-score detector for drifts that stay within
// physical limits but depart from the vehicle's own recent behaviour.
package anomaly

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/telematics"
)

// Kind classifies a finding.
type Kind string

// Detector finding kinds.
const (
	// OilPressureLow flags minimum oil pressure under the hard limit.
	OilPressureLow Kind = "oil-pressure-low"
	// CoolantOverheat flags maximum coolant temperature over the limit.
	CoolantOverheat Kind = "coolant-overheat"
	// SignalDrift flags a robust z-score excursion of a signal.
	SignalDrift Kind = "signal-drift"
)

// Finding is one detected anomaly.
type Finding struct {
	VehicleID string
	Kind      Kind
	At        time.Time
	// Signal names the offending signal for drift findings.
	Signal string
	// Value is the observed value, Threshold the violated bound.
	Value, Threshold float64
}

func (f Finding) String() string {
	return fmt.Sprintf("%s %s at %s: %s=%.1f (threshold %.1f)",
		f.VehicleID, f.Kind, f.At.Format("2006-01-02 15:04"), f.Signal, f.Value, f.Threshold)
}

// Limits are the hard physical bounds of the limit detector.
type Limits struct {
	// MinOilPressure is the lowest acceptable working oil pressure
	// (kPa); reports below it are flagged.
	MinOilPressure float64
	// MaxCoolantTemp is the highest acceptable coolant temperature
	// (°C); reports above it are flagged.
	MaxCoolantTemp float64
}

// DefaultLimits returns plausible diesel-engine bounds matching the
// telematics frame generator's nominal operating points.
func DefaultLimits() Limits {
	return Limits{MinOilPressure: 150, MaxCoolantTemp: 105}
}

// CheckLimits scans reports against hard limits. Reports with no
// working frames (zero counts) are skipped: an idle engine legitimately
// shows low oil pressure.
func CheckLimits(reports []telematics.SummaryReport, lim Limits) []Finding {
	var out []Finding
	for _, r := range reports {
		if r.WorkSeconds <= 0 {
			continue
		}
		if r.MinOilPressure < lim.MinOilPressure {
			out = append(out, Finding{
				VehicleID: r.VehicleID, Kind: OilPressureLow, At: r.PeriodStart,
				Signal: "oil_pressure_min", Value: r.MinOilPressure, Threshold: lim.MinOilPressure,
			})
		}
		if r.MaxCoolantTemp > lim.MaxCoolantTemp {
			out = append(out, Finding{
				VehicleID: r.VehicleID, Kind: CoolantOverheat, At: r.PeriodStart,
				Signal: "coolant_temp_max", Value: r.MaxCoolantTemp, Threshold: lim.MaxCoolantTemp,
			})
		}
	}
	return out
}

// DriftConfig controls the robust z-score detector.
type DriftConfig struct {
	// Window is the number of trailing reports forming the reference
	// distribution (default 48).
	Window int
	// Threshold is the |robust z| limit (default 4).
	Threshold float64
	// MinSamples is the minimum reference size before scoring starts
	// (default Window/2).
	MinSamples int
	// MinWorkFraction skips reports whose working share of the period
	// is below this bound (default 0.9): partially-working periods
	// (session start/end) legitimately mix idle-state signal levels in
	// and would pollute both the reference and the findings.
	MinWorkFraction float64
}

// DefaultDriftConfig returns the detector defaults.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Window: 48, Threshold: 4, MinWorkFraction: 0.9}
}

// ErrNoReports is returned when drift detection runs on empty input.
var ErrNoReports = errors.New("anomaly: no reports")

// DetectDrift scores each report's working-state signals against a
// rolling median/MAD estimate of the vehicle's recent behaviour and
// flags |z| above the threshold. MAD-based z-scores keep a single
// faulty report from inflating the reference spread.
func DetectDrift(reports []telematics.SummaryReport, cfg DriftConfig) ([]Finding, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	if cfg.Window <= 2 {
		cfg.Window = DefaultDriftConfig().Window
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultDriftConfig().Threshold
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = cfg.Window / 2
	}
	if cfg.MinWorkFraction <= 0 || cfg.MinWorkFraction > 1 {
		cfg.MinWorkFraction = DefaultDriftConfig().MinWorkFraction
	}

	type signal struct {
		name string
		get  func(telematics.SummaryReport) float64
	}
	signals := []signal{
		{"avg_engine_speed", func(r telematics.SummaryReport) float64 { return r.AvgEngineSpeed }},
		{"min_oil_pressure", func(r telematics.SummaryReport) float64 { return r.MinOilPressure }},
		{"max_coolant_temp", func(r telematics.SummaryReport) float64 { return r.MaxCoolantTemp }},
	}

	var out []Finding
	history := make(map[string][]float64, len(signals))
	for _, r := range reports {
		period := r.PeriodEnd.Sub(r.PeriodStart).Seconds()
		if period <= 0 || r.WorkSeconds < cfg.MinWorkFraction*period {
			continue
		}
		for _, sg := range signals {
			v := sg.get(r)
			h := history[sg.name]
			if len(h) >= cfg.MinSamples {
				med, mad := medianMAD(h)
				if mad > 0 {
					z := 0.6745 * (v - med) / mad // 0.6745: MAD→σ for normals
					if math.Abs(z) > cfg.Threshold {
						out = append(out, Finding{
							VehicleID: r.VehicleID, Kind: SignalDrift, At: r.PeriodStart,
							Signal: sg.name, Value: v, Threshold: cfg.Threshold,
						})
						continue // do not poison the reference with the outlier
					}
				}
			}
			h = append(h, v)
			if len(h) > cfg.Window {
				h = h[1:]
			}
			history[sg.name] = h
		}
	}
	return out, nil
}

// medianMAD returns the median and the median absolute deviation.
func medianMAD(values []float64) (med, mad float64) {
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	med = quantile(sorted)
	devs := make([]float64, len(sorted))
	for i, v := range sorted {
		devs[i] = math.Abs(v - med)
	}
	sort.Float64s(devs)
	return med, quantile(devs)
}

func quantile(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
