package telematics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Collector is the cloud-side endpoint: it receives SummaryReports from
// on-board controllers and reduces them to per-vehicle daily utilization
// series, the input of the prediction pipeline.
type Collector struct {
	// perDay[vehicle][dayKey] accumulates working seconds.
	perDay map[string]map[string]float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{perDay: make(map[string]map[string]float64)}
}

const dayKeyLayout = "2006-01-02"

// Receive ingests one summary report, attributing its working seconds to
// the calendar day of the period start.
func (c *Collector) Receive(r SummaryReport) error {
	if r.VehicleID == "" {
		return fmt.Errorf("telematics: report with empty vehicle id")
	}
	if r.WorkSeconds < 0 || math.IsNaN(r.WorkSeconds) {
		return fmt.Errorf("telematics: report for %s with invalid work seconds %v", r.VehicleID, r.WorkSeconds)
	}
	m, ok := c.perDay[r.VehicleID]
	if !ok {
		m = make(map[string]float64)
		c.perDay[r.VehicleID] = m
	}
	m[r.PeriodStart.UTC().Format(dayKeyLayout)] += r.WorkSeconds
	return nil
}

// Vehicles lists the vehicle IDs with at least one report, sorted.
func (c *Collector) Vehicles() []string {
	ids := make([]string, 0, len(c.perDay))
	for id := range c.perDay {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DailySeries materializes the contiguous daily utilization series of one
// vehicle from its first to its last reported day; days without reports
// are zero (the vehicle simply did not work).
func (c *Collector) DailySeries(vehicleID string) (start time.Time, u []float64, err error) {
	m, ok := c.perDay[vehicleID]
	if !ok || len(m) == 0 {
		return time.Time{}, nil, fmt.Errorf("telematics: no reports for vehicle %q", vehicleID)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	first, err := time.Parse(dayKeyLayout, keys[0])
	if err != nil {
		return time.Time{}, nil, fmt.Errorf("telematics: corrupt day key %q: %w", keys[0], err)
	}
	last, err := time.Parse(dayKeyLayout, keys[len(keys)-1])
	if err != nil {
		return time.Time{}, nil, fmt.Errorf("telematics: corrupt day key %q: %w", keys[len(keys)-1], err)
	}
	days := int(last.Sub(first).Hours()/24) + 1
	u = make([]float64, days)
	for k, v := range m {
		d, err := time.Parse(dayKeyLayout, k)
		if err != nil {
			return time.Time{}, nil, fmt.Errorf("telematics: corrupt day key %q: %w", k, err)
		}
		u[int(d.Sub(first).Hours()/24)] = v
	}
	return first, u, nil
}

// WriteCSV serializes a fleet's raw daily series as CSV with the header
// vehicle,model,class,date,seconds. NaN (missing) days are written as
// empty fields, matching how telematics backends export gaps.
func (f *Fleet) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "vehicle,model,class,date,seconds"); err != nil {
		return fmt.Errorf("telematics: writing CSV header: %w", err)
	}
	for _, v := range f.Vehicles {
		for t, sec := range v.RawU {
			date := v.Start.AddDate(0, 0, t).Format(dayKeyLayout)
			field := ""
			if !math.IsNaN(sec) {
				field = strconv.FormatFloat(sec, 'f', 1, 64)
			}
			if _, err := fmt.Fprintf(bw, "%s,%s,%s,%s,%s\n", v.Profile.ID, v.Profile.Model, v.Profile.Class, date, field); err != nil {
				return fmt.Errorf("telematics: writing CSV row: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses the CSV format produced by WriteCSV back into a fleet
// (profiles carry only ID/model/class; generator parameters are not
// serialized). Rows must be grouped by vehicle and sorted by date.
func ReadCSV(r io.Reader) (*Fleet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("telematics: empty CSV input")
	}
	if got := strings.TrimSpace(sc.Text()); got != "vehicle,model,class,date,seconds" {
		return nil, fmt.Errorf("telematics: unexpected CSV header %q", got)
	}
	fleet := &Fleet{}
	var cur *VehicleData
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("telematics: line %d: want 5 fields, got %d", line, len(parts))
		}
		id, model, class, dateStr, secStr := parts[0], parts[1], parts[2], parts[3], parts[4]
		date, err := time.Parse(dayKeyLayout, dateStr)
		if err != nil {
			return nil, fmt.Errorf("telematics: line %d: bad date %q: %w", line, dateStr, err)
		}
		sec := math.NaN()
		if secStr != "" {
			sec, err = strconv.ParseFloat(secStr, 64)
			if err != nil {
				return nil, fmt.Errorf("telematics: line %d: bad seconds %q: %w", line, secStr, err)
			}
		}
		if cur == nil || cur.Profile.ID != id {
			fleet.Vehicles = append(fleet.Vehicles, VehicleData{
				Profile: Profile{ID: id, Model: model, Class: VehicleClass(class)},
				Start:   date,
			})
			cur = &fleet.Vehicles[len(fleet.Vehicles)-1]
		}
		wantDay := len(cur.RawU)
		if got := int(date.Sub(cur.Start).Hours() / 24); got != wantDay {
			return nil, fmt.Errorf("telematics: line %d: vehicle %s day gap, expected offset %d got %d", line, id, wantDay, got)
		}
		cur.RawU = append(cur.RawU, sec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telematics: scanning CSV: %w", err)
	}
	if len(fleet.Vehicles) == 0 {
		return nil, fmt.Errorf("telematics: CSV contained no data rows")
	}
	return fleet, nil
}
