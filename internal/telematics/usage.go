package telematics

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
	"repro/internal/timeseries"
)

// VehicleClass is the coarse machine category; it determines the prior
// ranges the fleet generator draws per-vehicle parameters from, producing
// the heterogeneity the paper emphasizes.
type VehicleClass string

// Vehicle classes represented in the simulated fleet.
const (
	Excavator VehicleClass = "excavator"
	Crane     VehicleClass = "crane"
	Loader    VehicleClass = "loader"
	Bulldozer VehicleClass = "bulldozer"
	Grader    VehicleClass = "grader"
	DumpTruck VehicleClass = "dump-truck"
)

// AllClasses lists every class the fleet generator knows about.
func AllClasses() []VehicleClass {
	return []VehicleClass{Excavator, Crane, Loader, Bulldozer, Grader, DumpTruck}
}

// Profile is the complete parameterization of one simulated vehicle's
// usage process. All stochastic behaviour is driven by the seed handed to
// GenerateUsage, so a profile plus a seed fully determines the series.
type Profile struct {
	// ID is the vehicle identifier (e.g. "v07").
	ID string
	// Model is a human-readable model string (e.g. "EXC-210").
	Model string
	// Class is the machine category.
	Class VehicleClass

	// BaseDailySeconds is the typical working seconds on a full working
	// day at the home site (before weekday/season/site modulation).
	BaseDailySeconds float64
	// WeekdayFactor scales utilization per weekday (index 0 = Monday).
	// Construction fleets typically drop sharply on weekends.
	WeekdayFactor [7]float64
	// SeasonalAmp is the amplitude of the annual sinusoidal modulation
	// (0 = none; 0.3 = ±30 % between summer peak and winter trough).
	SeasonalAmp float64
	// SeasonalPhase shifts the annual peak (radians).
	SeasonalPhase float64
	// NoiseSigma is the sigma of the multiplicative lognormal day-to-day
	// noise.
	NoiseSigma float64
	// ZeroDayProb is the probability of an unplanned day off while the
	// vehicle is on an active job.
	ZeroDayProb float64
	// IdleEnterProb is the per-day probability of the job ending and the
	// vehicle entering an idle (unused) spell.
	IdleEnterProb float64
	// IdleMeanDays is the mean length of an idle spell (geometric).
	IdleMeanDays float64
	// IdleSeasonalAmp concentrates idle spells (and random days off) in
	// the seasonal usage trough, in [0, 1]: 0 = idles uniform over the
	// year, 1 = idles almost exclusively in the trough. Seasonally
	// clustered downtime is what makes the recent utilization window
	// informative about upcoming calendar-day consumption.
	IdleSeasonalAmp float64
	// RelocationProb is the per-day probability (while active) of moving
	// to a different site, which redraws the site intensity factor —
	// the sudden regime change visible for vehicle v2 in Figure 1. A
	// redraw also happens whenever an idle spell ends (new job, new
	// site).
	RelocationProb float64
	// SiteFactorRange bounds the uniform site intensity factor.
	SiteFactorRange [2]float64
	// FirstCycleFactor is the utilization derating at acquisition time.
	// Usage ramps linearly from this factor up to 1.0 as the first
	// allowance T_v is consumed, reproducing the paper's §4.4
	// observation that first-cycle mean usage is ≈ 30 % lower and that
	// the first cycle is markedly longer (Figure 2: 221 days vs
	// 65–105).
	FirstCycleFactor float64
	// InitialIdleMeanDays is the mean of the commissioning idle spell a
	// freshly acquired vehicle may sit through before its first job
	// (0 disables).
	InitialIdleMeanDays float64
	// Allowance is T_v, allowed usage seconds per maintenance cycle.
	Allowance float64
}

// Validate reports the first configuration error found.
func (p *Profile) Validate() error {
	switch {
	case p.ID == "":
		return fmt.Errorf("telematics: profile with empty ID")
	case p.BaseDailySeconds <= 0 || p.BaseDailySeconds > 86400:
		return fmt.Errorf("telematics: profile %s: base daily seconds %.0f outside (0, 86400]", p.ID, p.BaseDailySeconds)
	case p.Allowance <= 0:
		return fmt.Errorf("telematics: profile %s: non-positive allowance", p.ID)
	case p.NoiseSigma < 0:
		return fmt.Errorf("telematics: profile %s: negative noise sigma", p.ID)
	case p.IdleMeanDays < 0:
		return fmt.Errorf("telematics: profile %s: negative idle mean", p.ID)
	case p.FirstCycleFactor <= 0 || p.FirstCycleFactor > 1:
		return fmt.Errorf("telematics: profile %s: first-cycle factor %.2f outside (0, 1]", p.ID, p.FirstCycleFactor)
	case p.SiteFactorRange[0] <= 0 || p.SiteFactorRange[1] < p.SiteFactorRange[0]:
		return fmt.Errorf("telematics: profile %s: invalid site factor range %v", p.ID, p.SiteFactorRange)
	}
	for i, f := range p.WeekdayFactor {
		if f < 0 {
			return fmt.Errorf("telematics: profile %s: negative weekday factor at index %d", p.ID, i)
		}
	}
	return nil
}

// GenerateUsage simulates the daily utilization series U_v(t) for days
// [0, days) starting at startDate. The process is:
//
//	regime ∈ {active, idle}: active jobs end with prob IdleEnterProb and
//	are followed by a geometric idle spell; while active the vehicle may
//	relocate (redrawing the site intensity) and takes random days off;
//	daily seconds = base · weekday · season · site · firstCycle · noise,
//	clipped to the physical [0, 86400] range.
//
// The first-cycle derating tracks cumulative usage and applies until the
// allowance T_v has been consumed once.
func (p *Profile) GenerateUsage(startDate time.Time, days int, rnd *rng.Source) (timeseries.Series, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if days <= 0 {
		return nil, fmt.Errorf("telematics: profile %s: non-positive horizon %d", p.ID, days)
	}

	u := make(timeseries.Series, days)
	site := rnd.Range(p.SiteFactorRange[0], p.SiteFactorRange[1])
	idleLeft := 0
	if p.InitialIdleMeanDays > 0 {
		idleLeft = int(rnd.ExpFloat64() * p.InitialIdleMeanDays)
	}
	var cumUsage float64

	for t := 0; t < days; t++ {
		date := startDate.AddDate(0, 0, t)

		// Seasonal modulation: usage peaks where sin is +1; downtime
		// probabilities peak in the trough.
		seasonPhase := math.Sin(2*math.Pi*yearFraction(date) + p.SeasonalPhase)
		idleBoost := 1 - p.IdleSeasonalAmp*seasonPhase
		if idleBoost < 0 {
			idleBoost = 0
		}

		if idleLeft > 0 {
			idleLeft--
			u[t] = 0
			if idleLeft == 0 {
				// New job after the idle spell: new site, new intensity.
				site = rnd.Range(p.SiteFactorRange[0], p.SiteFactorRange[1])
			}
			continue
		}
		if rnd.Bernoulli(p.IdleEnterProb*idleBoost) && p.IdleMeanDays > 0 {
			// Geometric spell with the configured mean, at least 1 day.
			idleLeft = 1 + int(rnd.ExpFloat64()*p.IdleMeanDays)
			u[t] = 0
			continue
		}
		if rnd.Bernoulli(p.RelocationProb) {
			site = rnd.Range(p.SiteFactorRange[0], p.SiteFactorRange[1])
		}
		if rnd.Bernoulli(p.ZeroDayProb * idleBoost) {
			u[t] = 0
			continue
		}

		weekday := p.WeekdayFactor[mondayIndexed(date.Weekday())]
		if weekday == 0 {
			u[t] = 0
			continue
		}
		season := 1 + p.SeasonalAmp*seasonPhase
		// First-cycle ramp-up: the machine starts derated and reaches
		// full intensity once one allowance worth of usage is consumed.
		first := 1.0
		if cumUsage < p.Allowance {
			first = p.FirstCycleFactor + (1-p.FirstCycleFactor)*(cumUsage/p.Allowance)
		}
		noise := math.Exp(p.NoiseSigma*rnd.NormFloat64() - p.NoiseSigma*p.NoiseSigma/2)
		v := p.BaseDailySeconds * weekday * season * site * first * noise
		if v < 0 {
			v = 0
		}
		if v > 86400 {
			v = 86400
		}
		u[t] = v
		cumUsage += v
	}
	return u, nil
}

// mondayIndexed converts Go's Sunday-first weekday to a Monday-first
// index so WeekdayFactor[5], WeekdayFactor[6] are Saturday and Sunday.
func mondayIndexed(w time.Weekday) int {
	return (int(w) + 6) % 7
}

// yearFraction maps a date to [0, 1) across the calendar year.
func yearFraction(d time.Time) float64 {
	start := time.Date(d.Year(), 1, 1, 0, 0, 0, 0, d.Location())
	return float64(d.Sub(start).Hours()) / (365.25 * 24)
}
