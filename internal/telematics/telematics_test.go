package telematics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestFrameGenValidation(t *testing.T) {
	if _, err := NewFrameGen("", DefaultFrameGenConfig(), rng.New(1)); err == nil {
		t.Fatal("empty vehicle id accepted")
	}
	cfg := DefaultFrameGenConfig()
	cfg.Rate = 0.5
	if _, err := NewFrameGen("v1", cfg, rng.New(1)); err == nil {
		t.Fatal("sub-1Hz rate accepted")
	}
}

func TestFrameGenSession(t *testing.T) {
	gen, err := NewFrameGen("v1", DefaultFrameGenConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2019, 6, 3, 8, 0, 0, 0, time.UTC)
	var frames []Frame
	n := gen.Session(start, time.Minute, func(f Frame) bool {
		frames = append(frames, f)
		return true
	})
	if n != len(frames) {
		t.Fatalf("returned count %d != emitted %d", n, len(frames))
	}
	if want := 6000; n != want { // 100 Hz × 60 s
		t.Fatalf("got %d frames, want %d", n, want)
	}
	working := 0
	for _, f := range frames {
		if f.VehicleID != "v1" {
			t.Fatal("frame with wrong vehicle id")
		}
		if f.Working {
			working++
			if f.EngineSpeed < 1000 {
				t.Fatalf("working frame with idle RPM %v", f.EngineSpeed)
			}
		}
	}
	// ~92.5 % of the session is the working phase.
	if share := float64(working) / float64(n); share < 0.85 || share > 0.97 {
		t.Fatalf("working share %.3f outside [0.85, 0.97]", share)
	}
	// Frames are monotone in time.
	for i := 1; i < len(frames); i++ {
		if !frames[i].Timestamp.After(frames[i-1].Timestamp) {
			t.Fatal("timestamps not strictly increasing")
		}
	}
}

func TestFrameGenSessionAbort(t *testing.T) {
	gen, _ := NewFrameGen("v1", DefaultFrameGenConfig(), rng.New(1))
	n := gen.Session(time.Now(), time.Minute, func(Frame) bool { return false })
	if n != 1 {
		t.Fatalf("abort after first frame emitted %d frames", n)
	}
}

func TestControllerAggregation(t *testing.T) {
	const rate = 100.0
	ctrl, err := NewController("v1", 10*time.Minute, rate)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewFrameGen("v1", DefaultFrameGenConfig(), rng.New(2))
	start := time.Date(2019, 6, 3, 8, 0, 0, 0, time.UTC)
	gen.Session(start, 25*time.Minute, func(f Frame) bool {
		if err := ctrl.Ingest(f); err != nil {
			t.Fatal(err)
		}
		return true
	})
	reports := ctrl.Flush()
	if len(reports) != 3 { // 25 min spans three 10-minute periods
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	var work float64
	for _, r := range reports {
		if r.VehicleID != "v1" {
			t.Fatal("report with wrong vehicle")
		}
		if r.PeriodEnd.Sub(r.PeriodStart) != 10*time.Minute {
			t.Fatalf("period length %v", r.PeriodEnd.Sub(r.PeriodStart))
		}
		work += r.WorkSeconds
	}
	// 92.5 % of 25 min ≈ 1387 s of working time.
	if work < 1300 || work > 1500 {
		t.Fatalf("total work seconds %v outside [1300, 1500]", work)
	}
	if again := ctrl.Flush(); len(again) != 0 {
		t.Fatalf("second flush returned %d reports", len(again))
	}
}

func TestControllerRejectsForeignFrames(t *testing.T) {
	ctrl, _ := NewController("v1", time.Minute, 100)
	if err := ctrl.Ingest(Frame{VehicleID: "v2", Timestamp: time.Now()}); err == nil {
		t.Fatal("foreign frame accepted")
	}
}

func TestControllerValidation(t *testing.T) {
	if _, err := NewController("v1", 0, 100); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewController("v1", time.Minute, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	day := time.Date(2019, 6, 3, 0, 0, 0, 0, time.UTC)
	for i, secs := range []float64{100, 200, 300} {
		err := c.Receive(SummaryReport{
			VehicleID:   "v1",
			PeriodStart: day.AddDate(0, 0, i*2), // days 0, 2, 4
			WorkSeconds: secs,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	start, u, err := c.DailySeries("v1")
	if err != nil {
		t.Fatal(err)
	}
	if !start.Equal(day) {
		t.Fatalf("start = %v, want %v", start, day)
	}
	want := []float64{100, 0, 200, 0, 300}
	if len(u) != len(want) {
		t.Fatalf("series %v, want %v", u, want)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("series %v, want %v", u, want)
		}
	}
	if got := c.Vehicles(); len(got) != 1 || got[0] != "v1" {
		t.Fatalf("Vehicles = %v", got)
	}
}

func TestCollectorRejectsBadReports(t *testing.T) {
	c := NewCollector()
	if err := c.Receive(SummaryReport{VehicleID: "", WorkSeconds: 1}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := c.Receive(SummaryReport{VehicleID: "v1", WorkSeconds: -1}); err == nil {
		t.Fatal("negative work accepted")
	}
	if _, _, err := c.DailySeries("ghost"); err == nil {
		t.Fatal("unknown vehicle accepted")
	}
}

func TestProfileValidation(t *testing.T) {
	valid := Profile{
		ID: "v1", BaseDailySeconds: 20000, Allowance: 2e6,
		FirstCycleFactor: 0.5, SiteFactorRange: [2]float64{0.8, 1.2},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []func(*Profile){
		func(p *Profile) { p.ID = "" },
		func(p *Profile) { p.BaseDailySeconds = 0 },
		func(p *Profile) { p.BaseDailySeconds = 90000 },
		func(p *Profile) { p.Allowance = 0 },
		func(p *Profile) { p.NoiseSigma = -1 },
		func(p *Profile) { p.IdleMeanDays = -1 },
		func(p *Profile) { p.FirstCycleFactor = 0 },
		func(p *Profile) { p.FirstCycleFactor = 1.5 },
		func(p *Profile) { p.SiteFactorRange = [2]float64{1.2, 0.8} },
		func(p *Profile) { p.WeekdayFactor[3] = -1 },
	}
	for i, mutate := range cases {
		p := valid
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid profile accepted", i)
		}
	}
}

func TestGenerateUsageBoundsAndDeterminism(t *testing.T) {
	p := Profile{
		ID: "v1", BaseDailySeconds: 30000, Allowance: 2e6,
		FirstCycleFactor: 0.5, SiteFactorRange: [2]float64{0.8, 1.2},
		WeekdayFactor: [7]float64{1, 1, 1, 1, 1, 0.3, 0.1},
		NoiseSigma:    0.2, SeasonalAmp: 0.2, ZeroDayProb: 0.05,
		IdleEnterProb: 0.02, IdleMeanDays: 10,
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	u1, err := p.GenerateUsage(start, 500, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	u2, _ := p.GenerateUsage(start, 500, rng.New(9))
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("same seed produced different series")
		}
		if u1[i] < 0 || u1[i] > 86400 {
			t.Fatalf("day %d outside physical bounds: %v", i, u1[i])
		}
	}
	if _, err := p.GenerateUsage(start, 0, rng.New(1)); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestGenerateUsageFirstCycleDerating(t *testing.T) {
	// The documented paper fact: first-cycle mean usage ≈ 30 % below
	// subsequent cycles. Verify the generated ratio lands near it on a
	// busy profile.
	p := Profile{
		ID: "v1", BaseDailySeconds: 30000, Allowance: 2e6,
		FirstCycleFactor: 0.45, SiteFactorRange: [2]float64{0.95, 1.05},
		WeekdayFactor: [7]float64{1, 1, 1, 1, 1, 0.2, 0.1},
		NoiseSigma:    0.1,
	}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	u, err := p.GenerateUsage(start, 1500, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var cum, firstSum, laterSum float64
	firstN, laterN := 0, 0
	for _, v := range u {
		if cum < p.Allowance {
			firstSum += v
			firstN++
		} else {
			laterSum += v
			laterN++
		}
		cum += v
	}
	if laterN == 0 {
		t.Fatal("series never left the first cycle; horizon too short")
	}
	ratio := (firstSum / float64(firstN)) / (laterSum / float64(laterN))
	if ratio < 0.5 || ratio > 0.9 {
		t.Fatalf("first-cycle usage ratio %.2f outside [0.5, 0.9] (paper: ≈0.7)", ratio)
	}
}

func TestGenerateFleetShape(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Vehicles = 10
	cfg.Days = 400
	fleet, err := GenerateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Vehicles) != 10 {
		t.Fatalf("got %d vehicles", len(fleet.Vehicles))
	}
	classes := map[VehicleClass]bool{}
	for _, v := range fleet.Vehicles {
		if len(v.RawU) != 400 {
			t.Fatalf("vehicle %s has %d days", v.Profile.ID, len(v.RawU))
		}
		classes[v.Profile.Class] = true
	}
	if len(classes) < 4 {
		t.Fatalf("only %d classes in a 10-vehicle fleet", len(classes))
	}
}

func TestGenerateFleetDeterminism(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Vehicles = 4
	cfg.Days = 200
	f1, _ := GenerateFleet(cfg)
	f2, _ := GenerateFleet(cfg)
	for i := range f1.Vehicles {
		for d := range f1.Vehicles[i].RawU {
			if f1.Vehicles[i].RawU[d] != f2.Vehicles[i].RawU[d] {
				t.Fatal("same config produced different fleets")
			}
		}
	}
	cfg.Seed++
	f3, _ := GenerateFleet(cfg)
	diff := false
	for d := range f1.Vehicles[0].RawU {
		if f1.Vehicles[0].RawU[d] != f3.Vehicles[0].RawU[d] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fleets")
	}
}

func TestGenerateFleetCorruption(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Vehicles = 6
	cfg.Days = 600
	cfg.Corrupt = true
	cfg.CorruptionRate = 0.05
	fleet, err := GenerateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, v := range fleet.Vehicles {
		for _, x := range v.RawU {
			if math.IsNaN(x) || x < 0 || x > 86400 {
				bad++
			}
		}
	}
	if bad == 0 {
		t.Fatal("corruption enabled but no artifact found")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Vehicles = 0
	if _, err := GenerateFleet(cfg); err == nil {
		t.Fatal("zero vehicles accepted")
	}
	cfg = DefaultFleetConfig()
	cfg.Days = -1
	if _, err := GenerateFleet(cfg); err == nil {
		t.Fatal("negative horizon accepted")
	}
	cfg = DefaultFleetConfig()
	cfg.Corrupt = true
	cfg.CorruptionRate = 2
	if _, err := GenerateFleet(cfg); err == nil {
		t.Fatal("corruption rate > 1 accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Vehicles = 3
	cfg.Days = 50
	cfg.Corrupt = true
	cfg.CorruptionRate = 0.1
	fleet, _ := GenerateFleet(cfg)

	var buf bytes.Buffer
	if err := fleet.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vehicles) != 3 {
		t.Fatalf("round trip lost vehicles: %d", len(back.Vehicles))
	}
	for i, v := range back.Vehicles {
		orig := fleet.Vehicles[i]
		if v.Profile.ID != orig.Profile.ID || v.Profile.Class != orig.Profile.Class {
			t.Fatal("identity fields lost")
		}
		if !v.Start.Equal(orig.Start) {
			t.Fatal("start date lost")
		}
		for d := range orig.RawU {
			a, b := orig.RawU[d], v.RawU[d]
			if math.IsNaN(a) != math.IsNaN(b) {
				t.Fatalf("NaN mismatch at day %d", d)
			}
			if !math.IsNaN(a) && math.Abs(a-b) > 0.05 {
				t.Fatalf("value mismatch at day %d: %v vs %v", d, a, b)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header\n",
		"vehicle,model,class,date,seconds\nv1,m,c,not-a-date,1\n",
		"vehicle,model,class,date,seconds\nv1,m,c,2015-01-01,xyz\n",
		"vehicle,model,class,date,seconds\nv1,m,c,2015-01-01,1\nv1,m,c,2015-01-03,1\n", // gap
		"vehicle,model,class,date,seconds\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: malformed CSV accepted", i)
		}
	}
}
