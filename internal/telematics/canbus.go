// Package telematics simulates the data-acquisition substrate the paper
// relies on: CAN bus signals sampled on board industrial vehicles,
// aggregated by an on-board controller into periodic summary reports,
// shipped to a cloud collector, and finally reduced to the per-vehicle
// daily utilization series U_v(t) that the prediction pipeline consumes.
//
// The real system (Tierra S.p.A. telematics) is proprietary and its data
// is unavailable; this package is the documented substitution (DESIGN.md,
// S1). It reproduces the statistical properties the paper reports —
// heterogeneous usage levels, weekly and annual seasonality, multi-week
// idle periods, sudden site relocations, and the ~30 % lower utilization
// during the first maintenance cycle — so that every downstream component
// is exercised on data with the same shape as the original.
package telematics

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Frame is a decoded CAN bus message as produced by the on-board sensors
// and Machine Control Systems (paper §3: "messages for CAN at a frequency
// of approximately 100 Hz").
type Frame struct {
	// VehicleID identifies the emitting vehicle.
	VehicleID string
	// Timestamp is the acquisition instant.
	Timestamp time.Time
	// EngineSpeed is the engine rotational speed in RPM.
	EngineSpeed float64
	// OilPressure is the engine oil pressure in kPa.
	OilPressure float64
	// CoolantTemp is the engine coolant temperature in °C.
	CoolantTemp float64
	// Working reports whether the machine is actively operating (the
	// signal the utilization time is derived from).
	Working bool
}

// FrameGenConfig configures the frame-level signal synthesizer.
type FrameGenConfig struct {
	// Rate is the frame emission rate in Hz (paper: ~100 Hz). Values
	// below 1 are rejected by NewFrameGen.
	Rate float64
	// IdleRPM and WorkRPM bound the engine-speed signal.
	IdleRPM, WorkRPM float64
	// OilPressureNominal is the working-state oil pressure in kPa.
	OilPressureNominal float64
	// CoolantNominal is the working-state coolant temperature in °C.
	CoolantNominal float64
}

// DefaultFrameGenConfig returns the configuration used across the repo:
// 100 Hz emission, plausible diesel-engine operating points.
func DefaultFrameGenConfig() FrameGenConfig {
	return FrameGenConfig{
		Rate:               100,
		IdleRPM:            800,
		WorkRPM:            1900,
		OilPressureNominal: 420,
		CoolantNominal:     88,
	}
}

// FrameGen synthesizes CAN frames for work sessions of a single vehicle.
type FrameGen struct {
	cfg FrameGenConfig
	rnd *rng.Source
	id  string
}

// NewFrameGen builds a frame generator for one vehicle.
func NewFrameGen(vehicleID string, cfg FrameGenConfig, rnd *rng.Source) (*FrameGen, error) {
	if cfg.Rate < 1 {
		return nil, fmt.Errorf("telematics: frame rate %.2f Hz below 1 Hz", cfg.Rate)
	}
	if vehicleID == "" {
		return nil, fmt.Errorf("telematics: empty vehicle id")
	}
	return &FrameGen{cfg: cfg, rnd: rnd, id: vehicleID}, nil
}

// Session emits the frames of one continuous work session starting at
// start and lasting the given duration. The emitted stream alternates
// short idle warm-up/cool-down phases with the working phase, so the
// controller's working-time accounting is exercised on realistic input.
// The emit callback receives every frame; returning false aborts early.
func (g *FrameGen) Session(start time.Time, duration time.Duration, emit func(Frame) bool) int {
	if duration <= 0 {
		return 0
	}
	dt := time.Duration(float64(time.Second) / g.cfg.Rate)
	total := int(duration / dt)
	warm := total / 20 // ~5 % warm-up idle
	cool := total / 40 // ~2.5 % cool-down idle
	count := 0
	for i := 0; i < total; i++ {
		working := i >= warm && i < total-cool
		f := Frame{
			VehicleID: g.id,
			Timestamp: start.Add(time.Duration(i) * dt),
			Working:   working,
		}
		if working {
			f.EngineSpeed = g.cfg.WorkRPM + 120*g.rnd.NormFloat64()
			f.OilPressure = g.cfg.OilPressureNominal + 15*g.rnd.NormFloat64()
			f.CoolantTemp = g.cfg.CoolantNominal + 2.5*g.rnd.NormFloat64()
		} else {
			f.EngineSpeed = g.cfg.IdleRPM + 40*g.rnd.NormFloat64()
			f.OilPressure = 0.55*g.cfg.OilPressureNominal + 10*g.rnd.NormFloat64()
			f.CoolantTemp = g.cfg.CoolantNominal - 12 + 3*g.rnd.NormFloat64()
		}
		if f.EngineSpeed < 0 {
			f.EngineSpeed = 0
		}
		count++
		if !emit(f) {
			return count
		}
	}
	return count
}

// SummaryReport is the controller's periodic aggregation of raw frames
// (paper §3: "a controller ... periodically generates a summary report,
// and sends it to a cloud server").
type SummaryReport struct {
	VehicleID   string
	PeriodStart time.Time
	PeriodEnd   time.Time
	// WorkSeconds is the seconds spent in Working state in the period.
	WorkSeconds float64
	// FrameCount is the number of frames aggregated.
	FrameCount int
	// AvgEngineSpeed is the mean RPM over working frames.
	AvgEngineSpeed float64
	// MinOilPressure is the minimum observed oil pressure (kPa).
	MinOilPressure float64
	// MaxCoolantTemp is the maximum observed coolant temperature (°C).
	MaxCoolantTemp float64
}

// Controller is the on-board aggregator: it consumes frames and emits one
// SummaryReport per reporting period.
type Controller struct {
	vehicleID string
	period    time.Duration
	rate      float64

	cur      *SummaryReport
	rpmSum   float64
	rpmCount int
	out      []SummaryReport
}

// NewController builds a controller for one vehicle with the given
// reporting period (e.g. 10 minutes).
func NewController(vehicleID string, period time.Duration, frameRate float64) (*Controller, error) {
	if period <= 0 {
		return nil, fmt.Errorf("telematics: non-positive report period %v", period)
	}
	if frameRate < 1 {
		return nil, fmt.Errorf("telematics: frame rate %.2f Hz below 1 Hz", frameRate)
	}
	return &Controller{vehicleID: vehicleID, period: period, rate: frameRate}, nil
}

// Ingest consumes one frame, closing and buffering the current report if
// the frame falls outside the current period. Frames from other vehicles
// are rejected.
func (c *Controller) Ingest(f Frame) error {
	if f.VehicleID != c.vehicleID {
		return fmt.Errorf("telematics: controller for %s received frame from %s", c.vehicleID, f.VehicleID)
	}
	if c.cur != nil && !f.Timestamp.Before(c.cur.PeriodEnd) {
		c.flush()
	}
	if c.cur == nil {
		start := f.Timestamp.Truncate(c.period)
		c.cur = &SummaryReport{
			VehicleID:      c.vehicleID,
			PeriodStart:    start,
			PeriodEnd:      start.Add(c.period),
			MinOilPressure: math.Inf(1),
			MaxCoolantTemp: math.Inf(-1),
		}
		c.rpmSum, c.rpmCount = 0, 0
	}
	c.cur.FrameCount++
	if f.Working {
		c.cur.WorkSeconds += 1.0 / c.rate
		c.rpmSum += f.EngineSpeed
		c.rpmCount++
	}
	if f.OilPressure < c.cur.MinOilPressure {
		c.cur.MinOilPressure = f.OilPressure
	}
	if f.CoolantTemp > c.cur.MaxCoolantTemp {
		c.cur.MaxCoolantTemp = f.CoolantTemp
	}
	return nil
}

func (c *Controller) flush() {
	if c.cur == nil {
		return
	}
	if c.rpmCount > 0 {
		c.cur.AvgEngineSpeed = c.rpmSum / float64(c.rpmCount)
	}
	c.out = append(c.out, *c.cur)
	c.cur = nil
}

// Flush closes the in-progress period (if any) and returns all buffered
// reports, clearing the internal buffer.
func (c *Controller) Flush() []SummaryReport {
	c.flush()
	out := c.out
	c.out = nil
	return out
}
