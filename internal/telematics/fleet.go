package telematics

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/timeseries"
)

// FleetConfig parameterizes the synthetic-fleet generator. The defaults
// mirror the paper's dataset: 24 heterogeneous vehicles observed from
// January 2015 to September 2019 with T_v = 2 000 000 s.
type FleetConfig struct {
	// Vehicles is the fleet size (paper: 24).
	Vehicles int
	// Start is the first acquisition day (paper: January 2015).
	Start time.Time
	// Days is the acquisition horizon in days (paper: ~4 years ≈ 1730).
	Days int
	// Allowance is T_v in seconds (paper: 2 000 000).
	Allowance float64
	// Seed drives all randomness; identical seeds give identical fleets.
	Seed uint64
	// Corrupt, when true, injects the data-quality artifacts (missing
	// values, inconsistent readings) that the preparation pipeline of
	// §3 exists to clean up.
	Corrupt bool
	// CorruptionRate is the per-day probability of an artifact when
	// Corrupt is set.
	CorruptionRate float64
}

// DefaultFleetConfig returns the paper-matching configuration.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Vehicles:       24,
		Start:          time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC),
		Days:           1735, // Jan 2015 – Sep 2019
		Allowance:      timeseries.DefaultAllowance,
		Seed:           42,
		Corrupt:        false,
		CorruptionRate: 0.01,
	}
}

// Validate reports the first configuration error found.
func (c *FleetConfig) Validate() error {
	switch {
	case c.Vehicles <= 0:
		return fmt.Errorf("telematics: fleet size %d must be positive", c.Vehicles)
	case c.Days <= 0:
		return fmt.Errorf("telematics: horizon %d days must be positive", c.Days)
	case c.Allowance <= 0:
		return fmt.Errorf("telematics: allowance must be positive")
	case c.Corrupt && (c.CorruptionRate < 0 || c.CorruptionRate > 1):
		return fmt.Errorf("telematics: corruption rate %.3f outside [0,1]", c.CorruptionRate)
	}
	return nil
}

// VehicleData is the generated history of one vehicle: its profile, the
// (possibly corrupted) raw daily utilization, and the acquisition start.
type VehicleData struct {
	Profile Profile
	Start   time.Time
	// RawU is the daily utilization as collected, before cleaning. When
	// corruption is enabled it may contain NaNs (missing reports) and
	// physically impossible values.
	RawU timeseries.Series
}

// Fleet is a generated synthetic fleet.
type Fleet struct {
	Config   FleetConfig
	Vehicles []VehicleData
}

// classPrior bounds the per-class parameter draws. The spans are chosen
// so the generated fleet reproduces the paper's documented facts:
// typical daily utilization up to ~50 000 s with many vehicles in the
// 10 000–30 000 s band (Figure 1), complete cycles between ~65 and ~250
// days (Figure 2: 65–105-day cycles for a heavily used vehicle, a longer
// first cycle), and multi-week idle spells for some vehicles.
type classPrior struct {
	base      [2]float64 // BaseDailySeconds range
	weekend   [2]float64 // Saturday factor range (Sunday = half of it)
	seasonal  [2]float64
	noise     [2]float64
	zeroDay   [2]float64
	idleEnter [2]float64
	idleMean  [2]float64
	reloc     [2]float64
	site      [2]float64
}

// The priors encode the mechanism behind the paper's Table-1 shape: the
// *active-day* work rate of a vehicle is fairly stable (narrow site
// ranges, low noise), so the near-deadline L→D relation is learnable;
// what varies wildly — and wrecks the calendar-average baseline — is the
// mix of hard weekend shutdowns, multi-week between-job idle spells and
// the derated first cycle. Idle weight differs by class, giving the
// heterogeneous fleet of Figure 1 (busy excavators with ~100-day cycles
// next to cranes that sit unused for weeks).
var priors = map[VehicleClass]classPrior{
	Excavator: {base: [2]float64{26000, 38000}, weekend: [2]float64{0.0, 0.3}, seasonal: [2]float64{0.10, 0.22}, noise: [2]float64{0.08, 0.14}, zeroDay: [2]float64{0.02, 0.06}, idleEnter: [2]float64{0.018, 0.035}, idleMean: [2]float64{6, 14}, reloc: [2]float64{0.003, 0.008}, site: [2]float64{0.60, 1.40}},
	Crane:     {base: [2]float64{18000, 28000}, weekend: [2]float64{0.0, 0.2}, seasonal: [2]float64{0.15, 0.30}, noise: [2]float64{0.10, 0.18}, zeroDay: [2]float64{0.03, 0.08}, idleEnter: [2]float64{0.028, 0.050}, idleMean: [2]float64{14, 30}, reloc: [2]float64{0.004, 0.010}, site: [2]float64{0.55, 1.45}},
	Loader:    {base: [2]float64{20000, 32000}, weekend: [2]float64{0.0, 0.4}, seasonal: [2]float64{0.10, 0.20}, noise: [2]float64{0.08, 0.14}, zeroDay: [2]float64{0.02, 0.06}, idleEnter: [2]float64{0.020, 0.038}, idleMean: [2]float64{7, 16}, reloc: [2]float64{0.003, 0.008}, site: [2]float64{0.60, 1.40}},
	Bulldozer: {base: [2]float64{22000, 34000}, weekend: [2]float64{0.0, 0.3}, seasonal: [2]float64{0.12, 0.25}, noise: [2]float64{0.09, 0.16}, zeroDay: [2]float64{0.03, 0.07}, idleEnter: [2]float64{0.022, 0.042}, idleMean: [2]float64{9, 20}, reloc: [2]float64{0.004, 0.010}, site: [2]float64{0.55, 1.45}},
	Grader:    {base: [2]float64{14000, 24000}, weekend: [2]float64{0.0, 0.2}, seasonal: [2]float64{0.18, 0.32}, noise: [2]float64{0.10, 0.20}, zeroDay: [2]float64{0.04, 0.10}, idleEnter: [2]float64{0.032, 0.055}, idleMean: [2]float64{16, 35}, reloc: [2]float64{0.004, 0.010}, site: [2]float64{0.50, 1.50}},
	DumpTruck: {base: [2]float64{24000, 36000}, weekend: [2]float64{0.1, 0.5}, seasonal: [2]float64{0.10, 0.18}, noise: [2]float64{0.08, 0.13}, zeroDay: [2]float64{0.02, 0.06}, idleEnter: [2]float64{0.016, 0.032}, idleMean: [2]float64{6, 13}, reloc: [2]float64{0.003, 0.008}, site: [2]float64{0.60, 1.40}},
}

var modelNames = map[VehicleClass][]string{
	Excavator: {"EXC-210", "EXC-350", "EXC-490"},
	Crane:     {"CRN-45", "CRN-80"},
	Loader:    {"LDR-120", "LDR-150", "LDR-220"},
	Bulldozer: {"BLD-650", "BLD-850"},
	Grader:    {"GRD-14", "GRD-16"},
	DumpTruck: {"DMP-300", "DMP-400"},
}

// GenerateFleet builds a heterogeneous fleet per the config. Profiles are
// drawn class-round-robin so even small fleets cover several classes.
func GenerateFleet(cfg FleetConfig) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	classes := AllClasses()
	fleet := &Fleet{Config: cfg}
	for i := 0; i < cfg.Vehicles; i++ {
		vrnd := root.Split()
		class := classes[i%len(classes)]
		p := drawProfile(fmt.Sprintf("v%02d", i+1), class, cfg.Allowance, vrnd)
		u, err := p.GenerateUsage(cfg.Start, cfg.Days, vrnd)
		if err != nil {
			return nil, fmt.Errorf("telematics: generating vehicle %s: %w", p.ID, err)
		}
		if cfg.Corrupt {
			corrupt(u, cfg.CorruptionRate, vrnd)
		}
		fleet.Vehicles = append(fleet.Vehicles, VehicleData{Profile: p, Start: cfg.Start, RawU: u})
	}
	return fleet, nil
}

func drawProfile(id string, class VehicleClass, allowance float64, rnd *rng.Source) Profile {
	pr := priors[class]
	names := modelNames[class]
	sat := rnd.Range(pr.weekend[0], pr.weekend[1])
	var wf [7]float64
	for d := 0; d < 5; d++ {
		wf[d] = rnd.Range(0.9, 1.1)
	}
	wf[5] = sat
	wf[6] = sat / 2
	return Profile{
		ID:               id,
		Model:            names[rnd.Intn(len(names))],
		Class:            class,
		BaseDailySeconds: rnd.Range(pr.base[0], pr.base[1]),
		WeekdayFactor:    wf,
		SeasonalAmp:      rnd.Range(pr.seasonal[0], pr.seasonal[1]),
		SeasonalPhase:    rnd.Range(-0.6, 0.6),
		NoiseSigma:       rnd.Range(pr.noise[0], pr.noise[1]),
		ZeroDayProb:      rnd.Range(pr.zeroDay[0], pr.zeroDay[1]),
		IdleEnterProb:    rnd.Range(pr.idleEnter[0], pr.idleEnter[1]),
		IdleMeanDays:     rnd.Range(pr.idleMean[0], pr.idleMean[1]),
		IdleSeasonalAmp:  rnd.Range(0.6, 0.95),
		RelocationProb:   rnd.Range(pr.reloc[0], pr.reloc[1]),
		SiteFactorRange:  [2]float64{rnd.Range(pr.site[0], 0.95), rnd.Range(1.05, pr.site[1])},
		// Ramp start chosen so the first-cycle mean lands ≈ 30 % below
		// the steady-state mean, as the paper reports (§4.4).
		FirstCycleFactor:    rnd.Range(0.38, 0.58),
		InitialIdleMeanDays: rnd.Range(3, 15),
		Allowance:           allowance,
	}
}

// corrupt injects the artifacts §3's cleaning step must handle: missing
// reports (NaN), duplicated-transmission spikes (> 86400 s/day), and
// sensor glitches (negative values).
func corrupt(u timeseries.Series, rate float64, rnd *rng.Source) {
	for t := range u {
		if !rnd.Bernoulli(rate) {
			continue
		}
		switch rnd.Intn(3) {
		case 0:
			u[t] = nan()
		case 1:
			u[t] = 86400 + rnd.Range(1, 50000)
		case 2:
			u[t] = -rnd.Range(1, 20000)
		}
	}
}

func nan() float64 {
	var z float64
	return z / z
}
