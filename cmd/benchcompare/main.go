// Command benchcompare diffs the latest two run records of the
// repository's curated benchmark files (BENCH_ml.json, BENCH_serve.json,
// BENCH_ingest.json — each a JSON array of run records as written by
// scripts/bench_*.sh) and prints a per-benchmark ratio table. With -hot,
// a named hot benchmark whose ns/op regressed beyond -threshold fails
// the run with exit 1; everything else is informational. The committed
// files keep one record per measurement point (e.g. pre/post an
// optimization PR, same machine and budget), so "latest two" is exactly
// the before/after pair of the most recent change.
//
// Usage:
//
//	benchcompare [-hot name,name/...] [-threshold 1.10] FILE...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type benchResult struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

type runRecord struct {
	Label     string        `json:"label"`
	Benchtime string        `json:"benchtime"`
	CPU       string        `json:"cpu"`
	Results   []benchResult `json:"results"`
}

// row is one benchmark's old-vs-new comparison.
type row struct {
	name   string
	oldNs  float64
	newNs  float64
	ratio  float64 // new/old; > 1 is a slowdown
	hot    bool
	newRow bool // present only in the newer record
}

// hotMatch reports whether a benchmark name is covered by one of the
// guarded names: exact, or a sub-benchmark of it.
func hotMatch(name string, hot []string) bool {
	for _, h := range hot {
		if name == h || strings.HasPrefix(name, h+"/") {
			return true
		}
	}
	return false
}

// compareRuns pairs the two records' results by benchmark name and
// returns the comparison rows (new record's order) plus the hot
// benchmarks whose slowdown exceeds threshold.
func compareRuns(old, new runRecord, hot []string, threshold float64) (rows []row, regressions []string) {
	prev := make(map[string]benchResult, len(old.Results))
	for _, r := range old.Results {
		prev[r.Name] = r
	}
	for _, r := range new.Results {
		o, ok := prev[r.Name]
		if !ok {
			rows = append(rows, row{name: r.Name, newNs: r.NsPerOp, newRow: true})
			continue
		}
		rr := row{name: r.Name, oldNs: o.NsPerOp, newNs: r.NsPerOp, hot: hotMatch(r.Name, hot)}
		if o.NsPerOp > 0 {
			rr.ratio = r.NsPerOp / o.NsPerOp
		}
		rows = append(rows, rr)
		if rr.hot && rr.ratio > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: %.3gms -> %.3gms (%.2fx)",
				r.Name, o.NsPerOp/1e6, r.NsPerOp/1e6, rr.ratio))
		}
	}
	return rows, regressions
}

func label(r runRecord, idx int) string {
	if r.Label != "" {
		return r.Label
	}
	return fmt.Sprintf("record[%d]", idx)
}

func printTable(file string, old, new runRecord, oldIdx, newIdx int, rows []row) {
	fmt.Printf("## %s: %s -> %s", file, label(old, oldIdx), label(new, newIdx))
	if old.CPU != new.CPU || old.Benchtime != new.Benchtime {
		fmt.Printf("  (environments differ: %q@%s vs %q@%s — ratios indicative only)",
			old.CPU, old.Benchtime, new.CPU, new.Benchtime)
	}
	fmt.Println()
	fmt.Printf("%-52s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, r := range rows {
		mark := ""
		if r.hot {
			mark = " *"
		}
		if r.newRow {
			fmt.Printf("%-52s %14s %14.0f %8s\n", r.name+mark, "-", r.newNs, "new")
			continue
		}
		fmt.Printf("%-52s %14.0f %14.0f %7.2fx\n", r.name+mark, r.oldNs, r.newNs, r.ratio)
	}
}

func run(files []string, hot []string, threshold float64) int {
	exit := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			exit = 1
			continue
		}
		var records []runRecord
		if err := json.Unmarshal(data, &records); err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %s: %v\n", file, err)
			exit = 1
			continue
		}
		if len(records) < 2 {
			fmt.Printf("## %s: %d record(s), nothing to compare\n", file, len(records))
			continue
		}
		oldIdx, newIdx := len(records)-2, len(records)-1
		rows, regressions := compareRuns(records[oldIdx], records[newIdx], hot, threshold)
		printTable(file, records[oldIdx], records[newIdx], oldIdx, newIdx, rows)
		for _, reg := range regressions {
			fmt.Fprintf(os.Stderr, "benchcompare: REGRESSION %s (threshold %.2fx)\n", reg, threshold)
			exit = 1
		}
	}
	return exit
}

func main() {
	hotFlag := flag.String("hot", "", "comma-separated benchmark names guarded against regression (sub-benchmarks included)")
	threshold := flag.Float64("threshold", 1.10, "max allowed new/old ns per op ratio for hot benchmarks")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcompare [-hot names] [-threshold 1.10] FILE...")
		os.Exit(2)
	}
	var hot []string
	for _, h := range strings.Split(*hotFlag, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hot = append(hot, h)
		}
	}
	os.Exit(run(flag.Args(), hot, *threshold))
}
