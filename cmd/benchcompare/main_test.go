package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func rec(label string, ns map[string]float64) runRecord {
	r := runRecord{Label: label, Benchtime: "1x", CPU: "test"}
	for name, v := range ns {
		r.Results = append(r.Results, benchResult{Name: name, NsPerOp: v})
	}
	return r
}

func TestCompareRunsRatiosAndRegressions(t *testing.T) {
	old := rec("before", map[string]float64{
		"BenchmarkGBMFit/n=20000":    100e6,
		"BenchmarkForestFit/n=20000": 200e6,
		"BenchmarkTreeFit/n=200":     1e6,
	})
	new := rec("after", map[string]float64{
		"BenchmarkGBMFit/n=20000":    60e6,  // 0.60x: improvement
		"BenchmarkForestFit/n=20000": 250e6, // 1.25x: hot regression
		"BenchmarkTreeFit/n=200":     2e6,   // 2.00x: not hot, tolerated
		"BenchmarkNew/n=1":           5e5,   // no old counterpart
	})
	hot := []string{"BenchmarkGBMFit", "BenchmarkForestFit"}
	rows, regressions := compareRuns(old, new, hot, 1.10)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.name] = r
	}
	if r := byName["BenchmarkGBMFit/n=20000"]; !r.hot || r.ratio != 0.6 {
		t.Fatalf("gbm row = %+v, want hot ratio 0.6", r)
	}
	if r := byName["BenchmarkNew/n=1"]; !r.newRow {
		t.Fatalf("unpaired benchmark not marked new: %+v", r)
	}
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the forest one", regressions)
	}
	if got := regressions[0]; got[:len("BenchmarkForestFit/n=20000")] != "BenchmarkForestFit/n=20000" {
		t.Fatalf("regression names %q", got)
	}
}

func TestHotMatchCoversSubBenchmarks(t *testing.T) {
	hot := []string{"BenchmarkGBMFit"}
	if !hotMatch("BenchmarkGBMFit", hot) || !hotMatch("BenchmarkGBMFit/n=20000", hot) {
		t.Fatal("prefix sub-benchmark not matched")
	}
	if hotMatch("BenchmarkGBMFitX", hot) {
		t.Fatal("name-prefix collision matched")
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, records []runRecord) string {
		data, err := json.Marshal(records)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	ok := write("ok.json", []runRecord{
		rec("a", map[string]float64{"BenchmarkGBMFit/n=20000": 100}),
		rec("b", map[string]float64{"BenchmarkGBMFit/n=20000": 90}),
	})
	bad := write("bad.json", []runRecord{
		rec("a", map[string]float64{"BenchmarkGBMFit/n=20000": 100}),
		rec("b", map[string]float64{"BenchmarkGBMFit/n=20000": 150}),
	})
	single := write("single.json", []runRecord{rec("a", nil)})

	if code := run([]string{ok, single}, []string{"BenchmarkGBMFit"}, 1.10); code != 0 {
		t.Fatalf("clean compare exited %d", code)
	}
	if code := run([]string{bad}, []string{"BenchmarkGBMFit"}, 1.10); code != 1 {
		t.Fatalf("regressed compare exited %d, want 1", code)
	}
	if code := run([]string{bad}, nil, 1.10); code != 0 {
		t.Fatalf("regression without hot guard exited %d, want 0", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.json")}, nil, 1.10); code != 1 {
		t.Fatalf("missing file exited %d, want 1", code)
	}
}
