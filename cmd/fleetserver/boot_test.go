package main

import "testing"

// TestWaitForTelemetryAtBoot pins the cold-boot policy. The regression
// case is the third row: a partitioned (-join) shard whose store is
// empty — because the ring assigned it no vehicles, or because it boots
// without a seed CSV — must NOT wait for telemetry. It cold-trains
// eagerly so the donor exchange yields an empty+donors snapshot and the
// cluster's readiness does not hang on it until the retrain interval.
func TestWaitForTelemetryAtBoot(t *testing.T) {
	cases := []struct {
		name           string
		liveIngest     bool
		storedVehicles int
		partitioned    bool
		want           bool
	}{
		{"csv mode never waits", false, 0, false, false},
		{"standalone live empty store waits", true, 0, false, true},
		{"partitioned live empty store trains eagerly", true, 0, true, false},
		{"standalone live seeded store trains", true, 12, false, false},
		{"partitioned live seeded store trains", true, 12, true, false},
	}
	for _, tc := range cases {
		if got := waitForTelemetryAtBoot(tc.liveIngest, tc.storedVehicles, tc.partitioned); got != tc.want {
			t.Errorf("%s: waitForTelemetryAtBoot(%v, %d, %v) = %v, want %v",
				tc.name, tc.liveIngest, tc.storedVehicles, tc.partitioned, got, tc.want)
		}
	}
}
