// Command fleetserver boots the concurrent fleet engine and serves
// next-maintenance forecasts and workshop plans over HTTP (see
// internal/serve for the endpoints).
//
// Two ingestion modes:
//
//   - CSV mode (default): the fleet CSV (as produced by fleetgen) is
//     re-read on every retrain, so appended telemetry is picked up with
//     zero serving downtime.
//   - Live mode (-ingest): a concurrent telemetry store accepts batched
//     POST /telemetry reports; the CSV (now optional) only seeds the
//     store at boot. With -retrain-dirty N, an incremental retrain
//     kicks automatically once N vehicles have changed — and because
//     retrains reuse unchanged vehicles' models, its cost is
//     O(changed vehicles), not O(fleet).
//
// Usage:
//
//	fleetserver -data fleet.csv [-addr :8080] [-w 6] [-workers 8]
//	            [-retrain-interval 1h] [-ingest] [-retrain-dirty 1]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetserver: ")

	var (
		data        = flag.String("data", "", "fleet CSV file (required unless -ingest)")
		addr        = flag.String("addr", ":8080", "listen address")
		window      = flag.Int("w", 6, "feature window W")
		workers     = flag.Int("workers", 0, "training pool size (0 = GOMAXPROCS)")
		interval    = flag.Duration("retrain-interval", 0, "periodic retrain interval (0 disables)")
		liveIngest  = flag.Bool("ingest", false, "enable live telemetry ingestion (POST /telemetry); -data becomes seed data")
		retrainDirt = flag.Int("retrain-dirty", 0, "with -ingest: auto-retrain once this many vehicles changed (0 disables)")
	)
	flag.Parse()
	if *data == "" && !*liveIngest {
		fmt.Fprintln(os.Stderr, "usage: fleetserver -data fleet.csv [-addr :8080] [-workers 8] [-retrain-interval 1h] [-ingest] [-retrain-dirty 1]")
		os.Exit(2)
	}
	if *retrainDirt > 0 && !*liveIngest {
		log.Fatal("-retrain-dirty needs -ingest")
	}
	if *liveIngest && *retrainDirt <= 0 && *interval <= 0 {
		// Live mode with no retrain trigger would ingest forever
		// without ever training; default to retraining as soon as any
		// vehicle changes.
		*retrainDirt = 1
		log.Printf("-ingest without -retrain-dirty/-retrain-interval: defaulting -retrain-dirty to 1")
	}

	cfg := core.DefaultPredictorConfig()
	cfg.Window = *window

	var (
		store *ingest.Store
		src   engine.Source
	)
	if *liveIngest {
		store = ingest.New(timeseries.DefaultAllowance)
		if *data != "" {
			fleet, err := readFleetCSV(*data)
			if err != nil {
				log.Fatal(err)
			}
			res, err := store.SeedFromFleet(fleet)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("seeded ingest store from %s: %d vehicles, %d daily reports", *data, len(res.Vehicles), res.Accepted)
		}
		src = store.Fleet
	} else {
		src = csvSource(*data)
	}

	eng, err := engine.New(engine.Config{
		Predictor: cfg,
		Workers:   *workers,
		Source:    src,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := serve.NewWithOptions(eng, serve.Options{Ingest: store, RetrainDirty: *retrainDirt})
	if err != nil {
		log.Fatal(err)
	}

	// Bind before the cold training finishes: the server answers
	// /healthz and /admin/status immediately and 503s data endpoints
	// until the first snapshot lands, so orchestrator probes never see
	// a refused connection during a long initial train.
	if *liveIngest && len(store.Vehicles()) == 0 {
		log.Printf("ingest store empty; waiting for POST /telemetry before the first training")
	} else {
		go func() {
			snap, err := eng.RetrainFromSource(context.Background())
			if err != nil {
				// Without any later retrain trigger nothing would ever
				// recover a failed cold train — keep the old fail-fast
				// boot there. With one (periodic loop, or the dirty
				// threshold kicking retrains on ingest), stay up
				// serving 503s.
				if *interval <= 0 && *retrainDirt <= 0 {
					log.Fatalf("initial training failed: %v", err)
				}
				log.Printf("initial training failed: %v (serving 503s until a retrain succeeds)", err)
				return
			}
			log.Printf("trained %d vehicles in %.1fs on %d workers",
				len(snap.Statuses), snap.TrainDuration.Seconds(), eng.Workers())
		}()
	}

	if *interval > 0 {
		go retrainLoop(eng, *interval)
		log.Printf("retraining every %s", *interval)
	}
	if *retrainDirt > 0 {
		log.Printf("auto-retraining once %d vehicles are dirty", *retrainDirt)
	}

	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// readFleetCSV loads a fleetgen CSV.
func readFleetCSV(path string) (*telematics.Fleet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fleet, err := telematics.ReadCSV(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return fleet, err
}

// csvSource re-reads and re-prepares the fleet CSV on every call, so a
// retrain ingests whatever telemetry has been appended since boot.
func csvSource(path string) engine.Source {
	return func(context.Context) ([]engine.Vehicle, error) {
		fleet, err := readFleetCSV(path)
		if err != nil {
			return nil, err
		}
		out := make([]engine.Vehicle, 0, len(fleet.Vehicles))
		for _, v := range fleet.Vehicles {
			prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, timeseries.DefaultAllowance)
			if err != nil {
				return nil, err
			}
			out = append(out, engine.Vehicle{Series: prep.Series, Start: prep.Start})
		}
		return out, nil
	}
}

// retrainLoop rebuilds the snapshot on a fixed cadence. A tick that
// fires while another build is in flight is skipped — not queued —
// so the loop never trains the fleet back-to-back on the same data.
// Failures keep the previous snapshot serving and are retried at the
// next tick.
func retrainLoop(eng *engine.Engine, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for range ticker.C {
		snap, err := eng.TryRetrainFromSource(context.Background(), false)
		if errors.Is(err, engine.ErrRetrainInFlight) {
			continue
		}
		if err != nil {
			log.Printf("retrain failed (still serving generation %d): %v", eng.Status().Generation, err)
			continue
		}
		log.Printf("retrained: generation %d, %d vehicles (%d reused, %d retrained) in %.1fs",
			snap.Generation, len(snap.Statuses), snap.Reused, snap.Retrained, snap.TrainDuration.Seconds())
	}
}
