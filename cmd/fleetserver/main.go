// Command fleetserver boots the concurrent fleet engine on a fleet CSV
// (as produced by fleetgen) and serves next-maintenance forecasts and
// workshop plans over HTTP (see internal/serve for the endpoints).
//
// Training runs on a bounded worker pool; the CSV is re-read on every
// retrain (POST /admin/retrain, or periodically with
// -retrain-interval), so appended telemetry is picked up with zero
// serving downtime: the old model snapshot answers requests until the
// new one atomically replaces it.
//
// Usage:
//
//	fleetserver -data fleet.csv [-addr :8080] [-w 6] [-workers 8] [-retrain-interval 1h]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetserver: ")

	var (
		data     = flag.String("data", "", "fleet CSV file (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		window   = flag.Int("w", 6, "feature window W")
		workers  = flag.Int("workers", 0, "training pool size (0 = GOMAXPROCS)")
		interval = flag.Duration("retrain-interval", 0, "periodic retrain interval (0 disables)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "usage: fleetserver -data fleet.csv [-addr :8080] [-workers 8] [-retrain-interval 1h]")
		os.Exit(2)
	}

	cfg := core.DefaultPredictorConfig()
	cfg.Window = *window
	eng, err := engine.New(engine.Config{
		Predictor: cfg,
		Workers:   *workers,
		Source:    csvSource(*data),
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := serve.New(eng)
	if err != nil {
		log.Fatal(err)
	}

	// Bind before the cold training finishes: the server answers
	// /healthz and /admin/status immediately and 503s data endpoints
	// until the first snapshot lands, so orchestrator probes never see
	// a refused connection during a long initial train.
	go func() {
		snap, err := eng.RetrainFromSource(context.Background())
		if err != nil {
			// Without a periodic retrain nothing would ever recover a
			// failed cold train — keep the old fail-fast boot there. With
			// one, stay up serving 503s and let the next tick retry.
			if *interval <= 0 {
				log.Fatalf("initial training failed: %v", err)
			}
			log.Printf("initial training failed: %v (serving 503s until a retrain succeeds)", err)
			return
		}
		log.Printf("trained %d vehicles in %.1fs on %d workers",
			len(snap.Statuses), snap.TrainDuration.Seconds(), eng.Workers())
	}()

	if *interval > 0 {
		go retrainLoop(eng, *interval)
		log.Printf("retraining every %s", *interval)
	}

	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// csvSource re-reads and re-prepares the fleet CSV on every call, so a
// retrain ingests whatever telemetry has been appended since boot.
func csvSource(path string) engine.Source {
	return func(context.Context) ([]engine.Vehicle, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		fleet, err := telematics.ReadCSV(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		out := make([]engine.Vehicle, 0, len(fleet.Vehicles))
		for _, v := range fleet.Vehicles {
			prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, timeseries.DefaultAllowance)
			if err != nil {
				return nil, err
			}
			out = append(out, engine.Vehicle{Series: prep.Series, Start: prep.Start})
		}
		return out, nil
	}
}

// retrainLoop rebuilds the snapshot on a fixed cadence. A tick that
// fires while another build is in flight is skipped — not queued —
// so the loop never trains the fleet back-to-back on the same data.
// Failures keep the previous snapshot serving and are retried at the
// next tick.
func retrainLoop(eng *engine.Engine, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for range ticker.C {
		snap, err := eng.TryRetrainFromSource(context.Background())
		if errors.Is(err, engine.ErrRetrainInFlight) {
			continue
		}
		if err != nil {
			log.Printf("retrain failed (still serving generation %d): %v", eng.Status().Generation, err)
			continue
		}
		log.Printf("retrained: generation %d, %d vehicles in %.1fs",
			snap.Generation, len(snap.Statuses), snap.TrainDuration.Seconds())
	}
}
