// Command fleetserver trains the fleet predictor on a fleet CSV (as
// produced by fleetgen) and serves next-maintenance forecasts and
// workshop plans over HTTP (see internal/serve for the endpoints).
//
// Usage:
//
//	fleetserver -data fleet.csv [-addr :8080] [-w 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/serve"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetserver: ")

	var (
		data   = flag.String("data", "", "fleet CSV file (required)")
		addr   = flag.String("addr", ":8080", "listen address")
		window = flag.Int("w", 6, "feature window W")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "usage: fleetserver -data fleet.csv [-addr :8080]")
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := telematics.ReadCSV(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultPredictorConfig()
	cfg.Window = *window
	fp, err := core.NewFleetPredictor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range fleet.Vehicles {
		prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, timeseries.DefaultAllowance)
		if err != nil {
			log.Fatal(err)
		}
		if err := fp.AddVehicle(prep.Series, prep.Start); err != nil {
			log.Fatal(err)
		}
	}
	t0 := time.Now()
	statuses, err := fp.Train()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trained %d vehicles in %.1fs", len(statuses), time.Since(t0).Seconds())

	srv, err := serve.New(fp, statuses)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
