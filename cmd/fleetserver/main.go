// Command fleetserver boots the fleet engine — unsharded, sharded
// in-process, or as one member of a multi-process cluster — and serves
// next-maintenance forecasts and workshop plans over HTTP (see
// internal/serve for the endpoints).
//
// Ingestion modes:
//
//   - CSV mode (default): the fleet CSV (as produced by fleetgen) is
//     re-read on every retrain, so appended telemetry is picked up with
//     zero serving downtime.
//   - Live mode (-ingest): a concurrent telemetry store accepts batched
//     POST /telemetry reports; the CSV (now optional) only seeds the
//     store at boot. With -retrain-dirty N, an incremental retrain
//     kicks automatically once N vehicles have changed.
//
// Telemetry durability (-wal-dir, live mode): every accepted batch is
// journaled through a segmented write-ahead log before it is
// acknowledged (-fsync always|interval|never picks the sync policy),
// and a restarted process reconstructs the store by replaying the log
// — a kill -9 loses no acknowledged report. Combined with
// -snapshot-dir the boot order is snapstore-restore → WAL-replay →
// incremental reconcile retrain, so a crashed server comes back
// serving its last generation and folds recovered telemetry in without
// ever cold-training; each persisted generation also checkpoints the
// store and compacts the WAL segments the checkpoint covers.
//
// Cluster topologies (see internal/cluster and ARCHITECTURE.md):
//
//   - -shards N: one process, N engine shards behind a consistent-hash
//     ring and a fan-out router. Bit-identical to the unsharded engine
//     on the same data; training parallelizes per shard.
//   - -join NAME -peers LIST: this process is shard NAME of a
//     multi-process cluster; LIST ("name=url,name=url,...") fixes the
//     ring membership. The process stores, trains and serves only the
//     vehicles the ring assigns to NAME — the router partitions
//     telemetry to owners, so raw storage is ~1/N per shard — and
//     assembles its fleet-wide cold-start donor pool by pulling its
//     peers' old-vehicle series over GET /internal/donors at each
//     retrain (the donor-series exchange; live mode requires peer
//     URLs).
//   - -peers LIST without -join: a pure router. No engine runs here;
//     requests fan out to the peers and merge, and POST /telemetry
//     routes each vehicle's reports to its ring owner only.
//
// Snapshot persistence: with -snapshot-dir every published generation
// is spilled to disk (atomic rename) and restored at the next boot, so
// a restarted server answers from its last generation immediately and
// retrains incrementally from the persisted fingerprints instead of
// cold-training.
//
// Telemetry protection (enforce at the fleet's front door — the
// router in a sharded deployment): -telemetry-rps/-telemetry-burst
// shed excess POST /telemetry load with 429 + Retry-After, and
// -telemetry-token requires a bearer token.
//
// Usage:
//
//	fleetserver -data fleet.csv [-addr :8080] [-w 6] [-workers 8]
//	            [-retrain-interval 1h] [-ingest] [-retrain-dirty 1]
//	            [-shards 4] [-snapshot-dir /var/lib/fleet]
//	            [-wal-dir /var/lib/fleet/wal] [-fsync always]
//	            [-telemetry-rps 50] [-telemetry-token SECRET]
//	            [-log-level info] [-log-format json] [-pprof]
//	fleetserver -join shard0 -peers shard0=http://h0:8080,shard1=http://h1:8080 ...
//	fleetserver -peers shard0=http://h0:8080,shard1=http://h1:8080 [-addr :8000]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snapstore"
	"repro/internal/telematics"
	"repro/internal/timeseries"
	"repro/internal/wal"
)

// fatal logs one Error record and exits — the structured analogue of
// log.Fatal.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		data        = flag.String("data", "", "fleet CSV file (required unless -ingest or router mode)")
		addr        = flag.String("addr", ":8080", "listen address")
		window      = flag.Int("w", 6, "feature window W")
		workers     = flag.Int("workers", 0, "training pool size per engine (0 = GOMAXPROCS)")
		fitWorkers  = flag.Int("fit-workers", 0, "intra-fit parallelism per model (feature-parallel split search + subtree workers; 0/1 = serial, results are bit-identical)")
		interval    = flag.Duration("retrain-interval", 0, "periodic retrain interval (0 disables)")
		liveIngest  = flag.Bool("ingest", false, "enable live telemetry ingestion (POST /telemetry); -data becomes seed data")
		retrainDirt = flag.Int("retrain-dirty", 0, "with -ingest: auto-retrain once this many vehicles changed (0 disables)")
		udpListen   = flag.String("udp-listen", "", "with -ingest: also accept binary telemetry datagrams on this UDP address (ack-less; e.g. :9081)")

		shards  = flag.Int("shards", 1, "in-process engine shards behind a consistent-hash ring")
		join    = flag.String("join", "", "multi-process mode: this process's shard name (must appear in -peers)")
		peers   = flag.String("peers", "", "cluster membership as name=url[,name=url...]; with -join names the ring, without -join runs a pure router")
		snapDir = flag.String("snapshot-dir", "", "spill each generation here and restore it at boot instead of cold-training")
		walDir  = flag.String("wal-dir", "", "with -ingest: journal accepted telemetry batches here and replay them at boot (crash-safe ingest)")
		fsync   = flag.String("fsync", "always", "WAL fsync policy: always (ack = durable), interval, or never")

		telToken = flag.String("telemetry-token", "", "require 'Authorization: Bearer <token>' on POST /telemetry")
		telRPS   = flag.Float64("telemetry-rps", 0, "rate-limit POST /telemetry at this many requests/second (0 = unlimited)")
		telBurst = flag.Int("telemetry-burst", 0, "token-bucket burst for -telemetry-rps (0 = ceil(rps))")

		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (probe-route request lines log at debug)")
		logFormat = flag.String("log-format", "json", "log output format: json (one object per line) or text")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for CPU/heap/goroutine profiling")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetserver: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat)
	slog.SetDefault(logger)

	guard := serve.GuardOptions{Token: *telToken, RPS: *telRPS, Burst: *telBurst}

	// Pure router: no engine, no data — just the ring and the peers.
	if *peers != "" && *join == "" {
		runRouter(*addr, *peers, guard, logger, *pprofFlag)
		return
	}

	if *data == "" && !*liveIngest {
		fmt.Fprintln(os.Stderr, "usage: fleetserver -data fleet.csv [-addr :8080] [-workers 8] [-retrain-interval 1h] [-ingest] [-retrain-dirty 1] [-shards N] [-snapshot-dir DIR]")
		fmt.Fprintln(os.Stderr, "       fleetserver -join NAME -peers LIST ...   (cluster shard)")
		fmt.Fprintln(os.Stderr, "       fleetserver -peers LIST [-addr :8000]    (cluster router)")
		os.Exit(2)
	}
	if *retrainDirt > 0 && !*liveIngest {
		fatal("-retrain-dirty needs -ingest")
	}
	if *walDir != "" && !*liveIngest {
		fatal("-wal-dir needs -ingest")
	}
	if *udpListen != "" && !*liveIngest {
		fatal("-udp-listen needs -ingest")
	}
	if *shards > 1 && *join != "" {
		fatal("-shards and -join are mutually exclusive")
	}
	if *liveIngest && *retrainDirt <= 0 && *interval <= 0 {
		*retrainDirt = 1
		slog.Info("-ingest without -retrain-dirty/-retrain-interval: defaulting -retrain-dirty to 1")
	}

	cfg := core.DefaultPredictorConfig()
	cfg.Window = *window
	cfg.FitWorkers = *fitWorkers

	// Cluster shard membership (needed before seeding: a partitioned
	// shard stores only its ring-owned slice of the fleet).
	var (
		ring     *cluster.Ring
		peerURLs []string // other shards, for the donor exchange
	)
	if *join != "" {
		members := parsePeers(*peers)
		names := make([]string, 0, len(members))
		found := false
		for _, m := range members {
			names = append(names, m.name)
			if m.name == *join {
				found = true
				continue
			}
			if m.url != "" {
				peerURLs = append(peerURLs, m.url)
			}
		}
		if !found {
			fatal("-join does not appear in -peers", "join", *join, "peers", *peers)
		}
		var err error
		if ring, err = cluster.NewRingOf(0, names...); err != nil {
			fatal("building ring", "error", err)
		}
		if *liveIngest && len(peerURLs) != len(names)-1 {
			fatal("live partitioned mode needs a URL for every peer in -peers (the donor-series exchange pulls from them)")
		}
		slog.Info("cluster shard joining ring", "shard", *join, "members", len(names), "ring", strings.Join(names, ", "))
	}

	// Base fleet source: live store (durable with -wal-dir) or CSV
	// re-read. Boot order for a durable store: checkpoint + WAL replay
	// happen inside OpenDurable, before anything is served.
	var (
		store *ingest.Store
		base  engine.Source
	)
	if *liveIngest {
		store = openIngestStore(*walDir, *fsync)
		if *data != "" {
			fleet, err := readFleetCSV(*data)
			if err != nil {
				fatal("reading fleet CSV", "file", *data, "error", err)
			}
			if ring != nil {
				// Partitioned shard: seed only the ring-owned vehicles;
				// peers' telemetry never lands here (storage ~1/N).
				owned := &telematics.Fleet{Config: fleet.Config}
				for _, v := range fleet.Vehicles {
					if ring.Owner(v.Profile.ID) == *join {
						owned.Vehicles = append(owned.Vehicles, v)
					}
				}
				fleet = owned
			}
			if len(fleet.Vehicles) > 0 {
				res, err := store.SeedFromFleet(fleet)
				if err != nil {
					fatal("seeding ingest store", "file", *data, "error", err)
				}
				slog.Info("seeded ingest store", "file", *data, "vehicles", len(res.Vehicles), "reports", res.Accepted)
			}
		}
		base = store.Fleet
	} else {
		base = csvSource(*data)
	}

	var snaps *snapstore.Store
	if *snapDir != "" {
		var err error
		if snaps, err = snapstore.New(*snapDir); err != nil {
			fatal("opening snapshot store", "dir", *snapDir, "error", err)
		}
	}

	waitForTelemetry := waitForTelemetryAtBoot(*liveIngest, len(storeVehicles(store)), ring != nil)
	ecfg := engine.Config{Predictor: cfg, Workers: *workers, Logger: logger}

	if *shards > 1 {
		runSharded(*addr, *shards, ecfg, base, store, snaps, *retrainDirt, *interval, waitForTelemetry, guard, logger, *pprofFlag, *udpListen)
		return
	}

	// Single engine: the whole fleet, or — with -join — this shard's
	// partition of it.
	shardName := "default"
	src := base
	if ring != nil {
		shardName = *join
		if *liveIngest {
			// Partitioned store: everything local is owned; the
			// fleet-wide donor pool is pulled from the peers at each
			// retrain.
			src = cluster.DonorExchangeSource(base, peerURLs, timeseries.DefaultAllowance, nil)
		} else {
			// CSV mode keeps the full fleet on local disk; partition it.
			src = cluster.PartitionSource(base, ring, *join)
		}
	}

	ecfg.Source = src
	ecfg.Logger = logger.With("shard", shardName)
	// The encode-timing getter is late-bound: OnSnapshot only fires
	// after a retrain, by which time eng is set.
	var eng *engine.Engine
	ecfg.OnSnapshot = snapshotSaver(snaps, shardName, store, func() *engine.TrainMetrics {
		if eng == nil {
			return nil
		}
		return eng.Metrics()
	})
	eng, err = engine.New(ecfg)
	if err != nil {
		fatal("building engine", "error", err)
	}
	restored := restoreSnapshot(eng, snaps, shardName)

	srv, err := serve.NewWithOptions(eng, serve.Options{
		Ingest:       store,
		RetrainDirty: *retrainDirt,
		Telemetry:    guard,
		Logger:       logger.With("shard", shardName),
		Pprof:        *pprofFlag,
	})
	if err != nil {
		fatal("building server", "error", err)
	}

	// Bind before the cold training finishes: the server answers
	// /healthz and /admin/status immediately and 503s data endpoints
	// until the first snapshot lands. A restored snapshot serves at
	// once; retrains stay incremental against it, so the eager cold
	// train is skipped — a reconcile retrain (incremental: everything
	// the snapshot covers is reused without training) folds in whatever
	// the WAL replay recovered beyond the snapshot.
	switch {
	case restored:
		slog.Info("serving restored generation; retrains will be incremental", "shard", shardName, "generation", eng.Snapshot().Generation)
		if *liveIngest && len(store.Vehicles()) > 0 {
			retries := 0
			if ring != nil {
				retries = 60 // the first donor fetch races the peers' boot
			}
			go reconcileRetrain(eng, retries, shardName)
		}
	case waitForTelemetry:
		slog.Info("ingest store empty; waiting for POST /telemetry before the first training")
	default:
		// A partitioned shard's first donor fetch races its peers' boot:
		// retry the cold train while the cluster assembles instead of
		// wedging unready until telemetry happens to arrive.
		retries := 0
		if ring != nil && *liveIngest {
			retries = 60
		}
		go initialTrain(eng, retries, *interval <= 0 && *retrainDirt <= 0)
	}

	if *interval > 0 {
		go retrainLoop([]*engine.Engine{eng}, *interval)
		slog.Info("periodic retraining enabled", "interval", interval.String())
	}
	if *retrainDirt > 0 {
		slog.Info("dirty-vehicle retraining enabled", "threshold", *retrainDirt)
	}

	openUDPDoor(srv, *udpListen)
	slog.Info("listening", "addr", *addr, "shard", shardName, "pprof", *pprofFlag)
	fatal("http server exited", "error", http.ListenAndServe(*addr, srv))
}

// openUDPDoor starts the ack-less binary telemetry listener when
// -udp-listen is set. It must run before the HTTP listener binds (the
// door's registration on /metrics is not synchronized with requests).
func openUDPDoor(srv *serve.Server, addr string) {
	if addr == "" {
		return
	}
	udp, err := srv.ServeUDP(serve.UDPOptions{Addr: addr})
	if err != nil {
		fatal("opening UDP telemetry door", "addr", addr, "error", err)
	}
	slog.Info("UDP telemetry door open (ack-less binary frames)", "addr", udp.Addr().String())
}

// runSharded boots the in-process cluster: N partitioned engines, one
// serve.Server each over the shared store, and the fan-out router in
// front.
func runSharded(addr string, shards int, ecfg engine.Config, base engine.Source, store *ingest.Store, snaps *snapstore.Store, retrainDirty int, interval time.Duration, waitForTelemetry bool, guard serve.GuardOptions, logger *slog.Logger, pprofFlag bool, udpListen string) {
	// Shard engines register their training metrics here so the spill
	// hook can attribute snapshot-encode time; a spill that fires before
	// registration (a restore racing boot) just skips the observation.
	var metricsMu sync.Mutex
	metricsByShard := make(map[string]*engine.TrainMetrics)
	shardMetrics := func(shard string) *engine.TrainMetrics {
		metricsMu.Lock()
		defer metricsMu.Unlock()
		return metricsByShard[shard]
	}

	var onSnap func(string, *engine.Snapshot)
	if snaps != nil {
		onSnap = func(shard string, snap *engine.Snapshot) {
			t0 := time.Now()
			err := snaps.Save(shard, snap)
			if m := shardMetrics(shard); m != nil {
				m.ObserveStage("encode", t0)
			}
			if err != nil {
				slog.Error("snapshot spill failed", "shard", shard, "generation", snap.Generation, "error", err)
				return
			}
			// All in-process shards share one store; each persisted
			// generation advances the shared checkpoint.
			checkpointAfterSpill(store, shard, snap.Generation)
		}
	}
	sharded, err := cluster.NewSharded(cluster.ShardedConfig{
		Engine:     ecfg,
		Base:       base,
		Shards:     shards,
		OnSnapshot: onSnap,
	})
	if err != nil {
		fatal("building sharded cluster", "error", err)
	}

	backends := make([]serve.ShardBackend, 0, shards)
	var engines []*engine.Engine
	var udpSrv *serve.Server // first shard server hosts the UDP door (shared store)
	for _, sh := range sharded.Shards() {
		// Shards are trusted-internal behind the router: the guard is
		// enforced once, at the router below.
		srv, err := serve.NewWithOptions(sh.Engine, serve.Options{
			Ingest:       store,
			RetrainDirty: retrainDirty,
			Logger:       logger.With("shard", sh.Name),
		})
		if err != nil {
			fatal("building shard server", "shard", sh.Name, "error", err)
		}
		metricsMu.Lock()
		metricsByShard[sh.Name] = sh.Engine.Metrics()
		metricsMu.Unlock()
		backends = append(backends, serve.ShardBackend{Name: sh.Name, Handler: srv})
		engines = append(engines, sh.Engine)
		if udpSrv == nil {
			udpSrv = srv
		}

		if restoreSnapshot(sh.Engine, snaps, sh.Name) {
			slog.Info("serving restored generation", "shard", sh.Name, "generation", sh.Engine.Snapshot().Generation)
			if store != nil && len(store.Vehicles()) > 0 {
				go reconcileRetrain(sh.Engine, 0, sh.Name)
			}
		} else if !waitForTelemetry {
			go func(sh cluster.Shard) {
				snap, err := sh.Engine.RetrainFromSource(context.Background())
				if err != nil {
					// Same contract as the unsharded boot: without any
					// later retrain trigger nothing would ever recover a
					// failed cold train, so fail fast for the
					// orchestrator; with one, stay up serving 503s.
					if interval <= 0 && retrainDirty <= 0 {
						fatal("initial training failed", "shard", sh.Name, "error", err)
					}
					slog.Error("initial training failed; serving 503s until a retrain succeeds", "shard", sh.Name, "error", err)
					return
				}
				slog.Info("initial training complete", "shard", sh.Name, "vehicles", len(snap.Statuses), "seconds", snap.TrainDuration.Seconds())
			}(sh)
		}
	}
	router, err := serve.NewRouter(sharded.Ring(), backends, serve.RouterOptions{
		Telemetry: guard,
		// CSV-mode shards mount no ingest surface; have the router 404
		// those routes itself instead of relaying per-shard 404s.
		DisableIngest: store == nil,
		// All in-process shards wrap this one store: upsert batches
		// exactly once at the router.
		SharedIngest: store,
		Logger:       logger.With("shard", "router"),
		Pprof:        pprofFlag,
	})
	if err != nil {
		fatal("building router", "error", err)
	}
	if waitForTelemetry {
		slog.Info("ingest store empty; waiting for POST /telemetry before the first training")
	}
	if interval > 0 {
		go retrainLoop(engines, interval)
		slog.Info("periodic retraining enabled", "interval", interval.String())
	}
	if udpListen != "" {
		if store == nil {
			fatal("-udp-listen needs -ingest")
		}
		// Datagrams land in the shared store through the first shard's
		// server; every shard sees them (one store behind all of them).
		openUDPDoor(udpSrv, udpListen)
	}
	slog.Info("listening", "addr", addr, "shards", shards, "pprof", pprofFlag)
	fatal("http server exited", "error", http.ListenAndServe(addr, router))
}

// runRouter boots the engine-less front door of a multi-process
// cluster.
func runRouter(addr, peers string, guard serve.GuardOptions, logger *slog.Logger, pprofFlag bool) {
	members := parsePeers(peers)
	if len(members) == 0 {
		fatal("router mode needs -peers name=url[,name=url...]", "peers", peers)
	}
	names := make([]string, 0, len(members))
	backends := make([]serve.ShardBackend, 0, len(members))
	for _, p := range members {
		if p.url == "" {
			fatal("router mode needs a URL for every peer", "peer", p.name)
		}
		names = append(names, p.name)
		backends = append(backends, serve.NewRemoteBackend(p.name, p.url, nil))
	}
	ring, err := cluster.NewRingOf(0, names...)
	if err != nil {
		fatal("building ring", "error", err)
	}
	router, err := serve.NewRouter(ring, backends, serve.RouterOptions{
		Telemetry: guard,
		Logger:    logger.With("shard", "router"),
		Pprof:     pprofFlag,
	})
	if err != nil {
		fatal("building router", "error", err)
	}
	slog.Info("routing", "shards", strings.Join(names, ", "), "addr", addr, "pprof", pprofFlag)
	fatal("http server exited", "error", http.ListenAndServe(addr, router))
}

// peer is one -peers entry.
type peer struct{ name, url string }

// parsePeers parses "name=url,name=url,..." (the url is optional for
// shard processes, which only need the names for the ring).
func parsePeers(s string) []peer {
	var out []peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, _ := strings.Cut(part, "=")
		out = append(out, peer{name: name, url: url})
	}
	return out
}

// storeVehicles lists the ingest store's vehicles, tolerating the nil
// store of CSV mode.
func storeVehicles(store *ingest.Store) []string {
	if store == nil {
		return nil
	}
	return store.Vehicles()
}

// waitForTelemetryAtBoot decides whether a live-ingest boot with an
// empty store should hold off training until the first POST /telemetry.
// A *partitioned* shard (-join) never waits, CSV seed or not: owning
// zero vehicles is a legitimate ring outcome, and the donor exchange
// makes its training fleet non-empty anyway — so it cold-trains eagerly
// and publishes a valid empty+donors snapshot instead of answering 503
// until the retrain interval (or a stray telemetry batch) rescues it.
// Only a standalone live server with nothing to train waits.
func waitForTelemetryAtBoot(liveIngest bool, storedVehicles int, partitioned bool) bool {
	return liveIngest && storedVehicles == 0 && !partitioned
}

// initialTrain runs the eager cold train, retrying up to `retries`
// times a second apart (partitioned shards race their peers' boot for
// the first donor fetch). failFast selects the fail-fast contract:
// with no later retrain trigger configured, nothing would ever recover
// a failed cold train, so exit for the orchestrator.
func initialTrain(eng *engine.Engine, retries int, failFast bool) {
	var snap *engine.Snapshot
	var err error
	for attempt := 0; ; attempt++ {
		snap, err = eng.RetrainFromSource(context.Background())
		if err == nil || attempt >= retries {
			break
		}
		if attempt == 0 {
			slog.Warn("initial training failed; retrying while the cluster assembles", "error", err)
		}
		time.Sleep(time.Second)
	}
	if err != nil {
		if failFast {
			fatal("initial training failed", "error", err)
		}
		slog.Error("initial training failed; serving 503s until a retrain succeeds", "error", err)
		return
	}
	slog.Info("initial training complete", "vehicles", len(snap.Statuses), "seconds", snap.TrainDuration.Seconds(), "workers", eng.Workers())
}

// reconcileRetrain folds WAL-recovered telemetry into a restored
// generation with one incremental retrain (near-free when the
// snapshot already covers the store: fingerprints match, everything
// reuses). Like initialTrain it retries while a partitioned cluster's
// peers come up, so crash recovery completes without waiting for the
// next telemetry batch or periodic tick. ErrRetrainInFlight means some
// other trigger is already rebuilding from the same source — done.
func reconcileRetrain(eng *engine.Engine, retries int, shard string) {
	slog.Info("reconciling restored generation with recovered telemetry (incremental)", "shard", shard)
	for attempt := 0; ; attempt++ {
		_, err := eng.TryRetrainFromSource(context.Background(), false)
		if err == nil || errors.Is(err, engine.ErrRetrainInFlight) {
			return
		}
		if attempt >= retries {
			slog.Error("reconcile retrain failed; still serving the restored generation", "shard", shard, "error", err)
			return
		}
		if attempt == 0 {
			slog.Warn("reconcile retrain failed; retrying while the cluster assembles", "shard", shard, "error", err)
		}
		time.Sleep(time.Second)
	}
}

// openIngestStore opens the live telemetry store: WAL-backed when a
// directory is given (recovering checkpoint + journal before anything
// serves), purely in-memory otherwise.
func openIngestStore(walDir, fsyncPolicy string) *ingest.Store {
	if walDir == "" {
		return ingest.New(timeseries.DefaultAllowance)
	}
	policy, err := wal.ParseFsyncPolicy(fsyncPolicy)
	if err != nil {
		fatal("parsing -fsync", "error", err)
	}
	store, err := ingest.OpenDurable(timeseries.DefaultAllowance, ingest.DurableOptions{Dir: walDir, Fsync: policy})
	if err != nil {
		fatal("opening durable ingest store", "dir", walDir, "error", err)
	}
	if st := store.Stats(); st.WAL != nil {
		slog.Info("wal recovered", "dir", walDir, "vehicles", st.Vehicles, "seq", st.Seq,
			"replayed", st.WAL.ReplayRecords, "replay_seconds", st.WAL.ReplaySeconds,
			"truncated_tail_events", st.WAL.TruncatedTailEvents, "fsync", fsyncPolicy)
	}
	return store
}

// snapshotSaver returns the OnSnapshot spill hook, or nil without a
// snapshot store. After a generation is persisted, a durable ingest
// store checkpoints and compacts its WAL — the compaction gate: a
// journal segment is only dropped once its content is covered by a
// checkpoint written under a persisted generation.
func snapshotSaver(snaps *snapstore.Store, shard string, store *ingest.Store, metrics func() *engine.TrainMetrics) func(*engine.Snapshot) {
	if snaps == nil {
		return nil
	}
	return func(snap *engine.Snapshot) {
		t0 := time.Now()
		err := snaps.Save(shard, snap)
		if m := metrics(); m != nil {
			// Attribute the gob encode + atomic rename to the encode
			// stage of the training pipeline.
			m.ObserveStage("encode", t0)
		}
		if err != nil {
			slog.Error("snapshot spill failed", "shard", shard, "generation", snap.Generation, "error", err)
			return
		}
		checkpointAfterSpill(store, shard, snap.Generation)
	}
}

// checkpointAfterSpill checkpoints a durable store once a generation
// is on disk; in-memory stores are a no-op.
func checkpointAfterSpill(store *ingest.Store, shard string, generation uint64) {
	if store == nil || !store.Durable() {
		return
	}
	res, err := store.CheckpointAndCompact()
	if err != nil {
		slog.Error("checkpoint after spill failed", "shard", shard, "generation", generation, "error", err)
		return
	}
	if res.SegmentsRemoved > 0 {
		slog.Info("generation persisted; wal checkpointed and compacted",
			"shard", shard, "generation", generation, "wal_index", res.WALIndex, "segments_removed", res.SegmentsRemoved)
	}
}

// restoreSnapshot loads and installs a persisted generation, reporting
// whether the engine now serves it. Missing spills are normal (first
// boot); anything else is logged and treated as cold boot.
func restoreSnapshot(eng *engine.Engine, snaps *snapstore.Store, shard string) bool {
	if snaps == nil {
		return false
	}
	snap, err := snaps.Load(shard)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			slog.Warn("ignoring unrestorable snapshot", "shard", shard, "error", err)
		}
		return false
	}
	if err := eng.Restore(snap); err != nil {
		slog.Warn("ignoring unrestorable snapshot", "shard", shard, "error", err)
		return false
	}
	return true
}

// readFleetCSV loads a fleetgen CSV.
func readFleetCSV(path string) (*telematics.Fleet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fleet, err := telematics.ReadCSV(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return fleet, err
}

// csvSource re-reads and re-prepares the fleet CSV on every call, so a
// retrain ingests whatever telemetry has been appended since boot.
func csvSource(path string) engine.Source {
	return func(context.Context) ([]engine.Vehicle, error) {
		fleet, err := readFleetCSV(path)
		if err != nil {
			return nil, err
		}
		out := make([]engine.Vehicle, 0, len(fleet.Vehicles))
		for _, v := range fleet.Vehicles {
			prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, timeseries.DefaultAllowance)
			if err != nil {
				return nil, err
			}
			out = append(out, engine.Vehicle{Series: prep.Series, Start: prep.Start})
		}
		return out, nil
	}
}

// retrainLoop rebuilds every engine's snapshot on a fixed cadence,
// engines in parallel so the cadence is bounded by the slowest shard,
// not the sum of all shards. A tick that fires while a given engine is
// already building is skipped for that engine — not queued. Failures
// keep the previous snapshot serving and are retried at the next tick.
func retrainLoop(engines []*engine.Engine, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for range ticker.C {
		var wg sync.WaitGroup
		for _, eng := range engines {
			wg.Add(1)
			go func(eng *engine.Engine) {
				defer wg.Done()
				snap, err := eng.TryRetrainFromSource(context.Background(), false)
				if errors.Is(err, engine.ErrRetrainInFlight) {
					return
				}
				if err != nil {
					slog.Error("periodic retrain failed; still serving previous generation", "generation", eng.Status().Generation, "error", err)
					return
				}
				slog.Info("periodic retrain complete", "generation", snap.Generation, "vehicles", len(snap.Statuses),
					"reused", snap.Reused, "retrained", snap.Retrained, "seconds", snap.TrainDuration.Seconds())
			}(eng)
		}
		wg.Wait()
	}
}
