// Command repro regenerates every table and figure of the paper's
// evaluation section on the synthetic fleet (DESIGN.md documents the
// data substitution). Output is plain text; figures are printed as
// aligned numeric series that plot directly with any external tool.
//
// Usage:
//
//	repro [-exp all|fig1|fig2|fig3|table1|fig4|table2|fig5|table3|timing|ablations]
//	      [-vehicles 24] [-days 1735] [-seed 42] [-tuned] [-full] [-w 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")

	var (
		exp      = flag.String("exp", "all", "experiment to run: all, fig1, fig2, fig3, table1, fig4, table2, fig5, table3, timing, ablations")
		vehicles = flag.Int("vehicles", 24, "fleet size")
		days     = flag.Int("days", 1735, "acquisition horizon in days")
		seed     = flag.Uint64("seed", 42, "master random seed")
		tuned    = flag.Bool("tuned", false, "grid-search hyper-parameters with 5-fold CV (slower)")
		full     = flag.Bool("full", false, "with -tuned: use the paper's full grid ranges")
		window   = flag.Int("w", 0, "window W for table1/table3/timing")
	)
	flag.Parse()

	scale := experiments.Scale{
		Vehicles:   *vehicles,
		Days:       *days,
		Seed:       *seed,
		GridSearch: *tuned,
		FullGrid:   *full,
		Corrupt:    true,
	}

	t0 := time.Now()
	env, err := experiments.NewEnv(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# fleet: %d vehicles, %d days, seed %d — %d old vehicles, %d values repaired by cleaning (%.1fs)\n\n",
		scale.Vehicles, scale.Days, scale.Seed, len(env.Olds), env.CleanRepairs, time.Since(t0).Seconds())

	run := func(name string, fn func(*experiments.Env) error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(env); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("## (%s finished in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	run("fig1", runFig1)
	run("fig2", runFig2)
	run("fig3", runFig3)
	run("table1", func(e *experiments.Env) error { return runTable1(e, *window) })
	run("fig4", runFig4)
	run("table2", runTable2)
	run("fig5", runFig5)
	run("table3", func(e *experiments.Env) error { return runTable3(e, *window) })
	run("timing", func(e *experiments.Env) error { return runTiming(e, *window) })
	run("ablations", runAblations)

	known := map[string]bool{"all": true, "fig1": true, "fig2": true, "fig3": true, "table1": true,
		"fig4": true, "table2": true, "fig5": true, "table3": true, "timing": true, "ablations": true}
	if !known[*exp] {
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func printSeries(title, xLabel, yLabel string, series []experiments.SeriesXY) {
	fmt.Printf("== %s ==\n", title)
	for _, s := range series {
		fmt.Printf("-- series %s (%s -> %s), %d points --\n", s.Name, xLabel, yLabel, len(s.X))
		for i := range s.X {
			fmt.Printf("%10.1f %12.1f\n", s.X[i], s.Y[i])
		}
	}
}

func runFig1(env *experiments.Env) error {
	s, err := env.Figure1()
	if err != nil {
		return err
	}
	printSeries("Figure 1: daily utilization U_v(t), two sample vehicles", "t", "U_v(t) [s]", s)
	return nil
}

func runFig2(env *experiments.Env) error {
	s, err := env.Figure2()
	if err != nil {
		return err
	}
	printSeries("Figure 2: days to next maintenance D_v(t)", "t", "D_v(t) [days]", s)
	fmt.Println("-- cycle statistics --")
	fmt.Printf("%-6s %6s %9s %9s %9s %7s\n", "veh", "cycles", "first[d]", "later-min", "later-max", "median")
	for _, st := range env.CycleStatistics() {
		fmt.Printf("%-6s %6d %9d %9d %9d %7d\n", st.VehicleID, st.CycleCount, st.FirstCycle, st.LaterMin, st.LaterMax, st.LaterMedian)
	}
	return nil
}

func runFig3(env *experiments.Env) error {
	s, err := env.Figure3()
	if err != nil {
		return err
	}
	printSeries("Figure 3: D_v(t) vs utilization seconds left L_v(t), one cycle", "L_v(t) [s]", "D_v(t) [days]", s)
	return nil
}

func runTable1(env *experiments.Env, w int) error {
	rows, err := env.Table1(w)
	if err != nil {
		return err
	}
	fmt.Printf("== Table 1: EMRE({1..29}), W=%d, trained on all data vs last-29-days region ==\n", w)
	fmt.Printf("%-6s %12s %14s %11s\n", "alg", "all-data", "restricted", "reduction")
	for _, r := range rows {
		fmt.Printf("%-6s %12.1f %14.1f %10.0f%%\n", r.Algorithm, r.AllData, r.Restricted, r.ReductionPct)
	}
	return nil
}

func runFig4(env *experiments.Env) error {
	series, err := env.Figure4(experiments.DefaultWindows())
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4: improvement (%) vs W=0 by window size (restricted training) ==")
	header := fmt.Sprintf("%-6s", "W")
	for _, s := range series {
		header += fmt.Sprintf(" %14s", s.Algorithm)
	}
	fmt.Println(header)
	for i, w := range series[0].Windows {
		line := fmt.Sprintf("%-6d", w)
		for _, s := range series {
			line += fmt.Sprintf(" %6.1f (%5.2f)", s.ImprovementPct[i], s.EMRE[i])
		}
		fmt.Println(line + "   // improvement% (EMRE)")
	}
	return nil
}

var cachedFig4 []experiments.Fig4Series

func fig4Cached(env *experiments.Env) ([]experiments.Fig4Series, error) {
	if cachedFig4 != nil {
		return cachedFig4, nil
	}
	s, err := env.Figure4(experiments.DefaultWindows())
	if err == nil {
		cachedFig4 = s
	}
	return s, err
}

func runTable2(env *experiments.Env) error {
	fig4, err := fig4Cached(env)
	if err != nil {
		return err
	}
	rows, err := experiments.Table2(fig4)
	if err != nil {
		return err
	}
	fmt.Println("== Table 2: best window W and resulting EMRE({1..29}) ==")
	fmt.Printf("%-6s %7s %10s\n", "alg", "best-W", "EMRE")
	for _, r := range rows {
		fmt.Printf("%-6s %7d %10.1f\n", r.Algorithm, r.BestW, r.EMRE)
	}
	return nil
}

func runFig5(env *experiments.Env) error {
	fig4, err := fig4Cached(env)
	if err != nil {
		return err
	}
	t2, err := experiments.Table2(fig4)
	if err != nil {
		return err
	}
	series, err := env.Figure5(t2)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 5: EMRE({d}) per single day-to-deadline d (best configs) ==")
	header := fmt.Sprintf("%-4s", "d")
	for _, s := range series {
		header += fmt.Sprintf(" %10s(W=%d)", s.Algorithm, s.BestW)
	}
	fmt.Println(header)
	for d := 1; d <= 29; d++ {
		line := fmt.Sprintf("%-4d", d)
		any := false
		for _, s := range series {
			v := math.NaN()
			for i, day := range s.Days {
				if day == d {
					v = s.EMRE[i]
					break
				}
			}
			if !math.IsNaN(v) {
				any = true
			}
			line += fmt.Sprintf(" %15.2f", v)
		}
		if any {
			fmt.Println(line)
		}
	}
	return nil
}

func runTable3(env *experiments.Env, w int) error {
	useW := w
	if useW == 0 {
		useW = 6
	}
	rows, err := env.Table3(useW)
	if err != nil {
		return err
	}
	fmt.Printf("== Table 3: semi-new EMRE({1..29}) and new-vehicle EGlobal (W=%d) ==\n", useW)
	fmt.Printf("%-10s %14s %12s\n", "model", "semi-new EMRE", "new EGlobal")
	for _, r := range rows {
		semi, fresh := "-", "-"
		if !math.IsNaN(r.SemiNewEMRE) {
			semi = fmt.Sprintf("%.1f", r.SemiNewEMRE)
		}
		if !math.IsNaN(r.NewEGlobal) {
			fresh = fmt.Sprintf("%.1f", r.NewEGlobal)
		}
		fmt.Printf("%-10s %14s %12s\n", r.Model, semi, fresh)
	}
	return nil
}

func runTiming(env *experiments.Env, w int) error {
	rows, err := env.Timing(w)
	if err != nil {
		return err
	}
	fmt.Printf("== Timing: mean per-vehicle train/predict seconds (W=%d) ==\n", w)
	fmt.Printf("%-6s %12s %14s %9s\n", "alg", "train [s]", "predict [s]", "vehicles")
	for _, r := range rows {
		fmt.Printf("%-6s %12.3f %14.6f %9d\n", r.Algorithm, r.MeanTrainSeconds, r.MeanPredictSeconds, r.Vehicles)
	}
	return nil
}

func runAblations(env *experiments.Env) error {
	fmt.Println("== Ablations (DESIGN.md §5) ==")
	print := func(rows []experiments.AblationRow, err error) error {
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-28s %-16s EMRE=%6.2f\n", r.Name, r.Variant, r.EMRE)
		}
		fmt.Println(strings.Repeat("-", 56))
		return nil
	}
	if err := print(env.AblationPooledVsPerVehicle(core.RF, 6)); err != nil {
		return err
	}
	if err := print(env.AblationAugmentation(core.RF, 6, 5)); err != nil {
		return err
	}
	if err := print(env.AblationHistogramBins(6, []int{8, 32, 256})); err != nil {
		return err
	}
	if err := print(env.AblationRestriction(core.RF, 0)); err != nil {
		return err
	}
	rows, err := env.Table3Similarity(6, experiments.MeasureDTW)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-28s %-16s EMRE=%6.2f\n", "similarity-measure", r.Model, r.SemiNewEMRE)
	}
	return nil
}
