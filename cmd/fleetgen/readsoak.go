// The read side of the soak subcommand (`fleetgen soak -read`): a
// sustained mixed-GET workload against a running fleetserver or
// cluster router, exercising the generation-keyed read path this
// server optimizes for — per-vehicle forecasts, the whole-fleet
// forecast, and the maintenance plan, in a configurable ratio.
//
// With -conditional each worker replays the last ETag it saw per
// route as If-None-Match, so the steady state measures the 304 path
// (tag comparison, no body) exactly like a well-behaved polling
// dashboard. The run closes with the client-side accounting (req/s,
// status mix, 304 share) and the server-side p50/p99 read from the
// fleet_http_request_seconds histogram delta on GET /metrics.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// readRoutes are the soaked GETs and their fleet_http_request_seconds
// route labels (mux patterns, not concrete paths).
var readRoutes = []string{
	"GET /vehicles/{id}/forecast",
	"GET /fleet/forecast",
	"GET /fleet/plan",
}

// readCounters aggregates read-worker progress.
type readCounters struct {
	requests    atomic.Uint64
	ok          atomic.Uint64 // 200s
	notModified atomic.Uint64 // 304s
	errors      atomic.Uint64
	bytes       atomic.Uint64
}

// parseReadMix parses "80/15/5" into cumulative percent thresholds for
// vehicle-forecast / fleet-forecast / plan.
func parseReadMix(mix string) ([3]uint64, error) {
	var out [3]uint64
	parts := strings.Split(mix, "/")
	if len(parts) != 3 {
		return out, fmt.Errorf("read-mix %q: want three /-separated percentages", mix)
	}
	sum := uint64(0)
	for i, p := range parts {
		var v uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
			return out, fmt.Errorf("read-mix %q: %v", mix, err)
		}
		sum += v
		out[i] = sum
	}
	if sum != 100 {
		return out, fmt.Errorf("read-mix %q sums to %d, want 100", mix, sum)
	}
	return out, nil
}

// fetchVehicleIDs lists the fleet once so per-vehicle reads hit real
// vehicles; limit caps how many IDs the workers cycle through.
func fetchVehicleIDs(target string, limit int) ([]string, error) {
	resp, err := http.Get(target + "/vehicles")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /vehicles answered %s", resp.Status)
	}
	var rows []serve.VehicleInfo
	if err := json.Unmarshal(body, &rows); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(rows))
	for _, r := range rows {
		ids = append(ids, r.ID)
		if len(ids) == limit {
			break
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("server lists no vehicles; train a fleet first")
	}
	return ids, nil
}

// readHistState is one scrape's view of the read-route latency
// histogram, cumulative buckets summed across the soaked routes.
type readHistState map[float64]uint64

func scrapeReadHistogram(target string) (readHistState, error) {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	samples, err := obs.ParseText(string(text))
	if err != nil {
		return nil, err
	}
	soaked := make(map[string]bool, len(readRoutes))
	for _, r := range readRoutes {
		soaked[r] = true
	}
	out := make(readHistState)
	for _, s := range samples {
		// A router scrape relays shard-side series with a shard label;
		// count only the front door's own histogram, once.
		if s.Name != "fleet_http_request_seconds_bucket" || s.Label("shard") != "" || !soaked[s.Label("route")] {
			continue
		}
		bound := math.Inf(1)
		if le := s.Label("le"); le != "+Inf" {
			fmt.Sscanf(le, "%g", &bound)
		}
		out[bound] += uint64(s.Value)
	}
	return out, nil
}

// readSoakMain drives the mixed-GET soak; flags are parsed by soakMain.
func readSoakMain(target, mix string, conditional bool, vehicles, concurrency int, duration time.Duration) {
	thresholds, err := parseReadMix(mix)
	if err != nil {
		log.Fatalf("soak -read: %v", err)
	}
	ids, err := fetchVehicleIDs(target, vehicles)
	if err != nil {
		log.Fatalf("soak -read: listing vehicles at %s: %v", target, err)
	}

	before, err := scrapeReadHistogram(target)
	if err != nil {
		log.Fatalf("soak -read: scraping %s/metrics before the run: %v", target, err)
	}

	paths := func(idx uint64) string {
		switch r := idx % 100; {
		case r < thresholds[0]:
			return "/vehicles/" + ids[idx%uint64(len(ids))] + "/forecast"
		case r < thresholds[1]:
			return "/fleet/forecast"
		default:
			return "/fleet/plan"
		}
	}

	var ctr readCounters
	// tags maps path -> last seen ETag; per-vehicle reads share their
	// snapshot-wide tag per path, plan tags fold in day+parameters.
	var tags sync.Map
	deadline := time.Now().Add(duration)
	next := new(atomic.Uint64)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: time.Minute}
			for time.Now().Before(deadline) {
				idx := next.Add(1) - 1
				path := paths(idx)
				req, err := http.NewRequest(http.MethodGet, target+path, nil)
				if err != nil {
					ctr.errors.Add(1)
					continue
				}
				if conditional {
					if tag, ok := tags.Load(path); ok {
						req.Header.Set("If-None-Match", tag.(string))
					}
				}
				resp, err := client.Do(req)
				if err != nil {
					ctr.errors.Add(1)
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ctr.requests.Add(1)
				ctr.bytes.Add(uint64(n))
				switch resp.StatusCode {
				case http.StatusOK:
					ctr.ok.Add(1)
					if conditional {
						if tag := resp.Header.Get("ETag"); tag != "" {
							tags.Store(path, tag)
						}
					}
				case http.StatusNotModified:
					ctr.notModified.Add(1)
				default:
					ctr.errors.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	after, err := scrapeReadHistogram(target)
	if err != nil {
		log.Fatalf("soak -read: scraping %s/metrics after the run: %v", target, err)
	}
	reportRead(&ctr, mix, conditional, duration, before, after)
}

// reportRead prints the closing accounting: the generator's view, then
// the server's own latency histogram over exactly this run.
func reportRead(ctr *readCounters, mix string, conditional bool, d time.Duration, before, after readHistState) {
	requests := ctr.requests.Load()
	rate := float64(requests) / d.Seconds()
	share := 100 * float64(ctr.notModified.Load()) / math.Max(float64(requests), 1)
	log.Printf("soak read (mix %s, conditional=%v): %d requests in %s (%.0f req/s), %d x 200, %d x 304 (%.1f%% not-modified), %d errors, %.1f MB read",
		mix, conditional, requests, d, rate, ctr.ok.Load(), ctr.notModified.Load(), share, ctr.errors.Load(), float64(ctr.bytes.Load())/1e6)

	// Delta the cumulative buckets so pre-run traffic doesn't skew the
	// quantiles.
	bounds := make([]float64, 0, len(after))
	for b := range after {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	cum := make([]uint64, len(bounds))
	total := uint64(0)
	for i, b := range bounds {
		cum[i] = after[b] - before[b]
		total = cum[i] // buckets are cumulative; +Inf is last
	}
	if len(bounds) == 0 || total == 0 {
		log.Printf("soak read server: no fleet_http_request_seconds delta on the soaked routes")
		return
	}
	for _, q := range []float64{0.5, 0.99} {
		log.Printf("soak read server: read-route latency p%.0f ≈ %.6fs over %d observed requests",
			q*100, obs.QuantileFromBuckets(bounds, cum, q), total)
	}
}
