// The soak subcommand: a sustained-load generator for the telemetry
// ingest path. It hammers a running fleetserver (or cluster router)
// with synthetic reports over one of the three doors — JSON HTTP,
// binary HTTP, or ack-less UDP datagrams — cycling through up to a
// million vehicle IDs, and closes with an accept/ack/loss accounting:
//
//	sent      reports the generator pushed out
//	acked     reports a door acknowledged (accepted + rejected) — HTTP
//	          only; UDP has no ack by design
//	applied   the server's own accepted+rejected delta, read from
//	          GET /admin/ingest before and after the run
//	loss      sent - applied: for HTTP doors this must be 0 (every
//	          2xx is a durable ack); for UDP it is the measured
//	          datagram loss under the offered load
//
// With -quantiles the run ends by scraping GET /metrics and printing
// the server-side fleet_ingest_batch_reports histogram quantiles and
// the per-door counters, so the generator's view and the server's view
// sit side by side.
//
// With -read the soak flips to the serving side (see readsoak.go): a
// sustained mixed GET workload over the forecast/plan routes, with
// optional If-None-Match replay (-conditional) to measure the 304
// steady state of the generation-keyed response caches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/serve"
)

// soakCounters aggregates worker progress; all fields are atomics.
type soakCounters struct {
	batches  atomic.Uint64
	sent     atomic.Uint64 // reports pushed out
	acked    atomic.Uint64 // reports acknowledged (HTTP doors)
	rejected atomic.Uint64 // rejected per the acks
	errors   atomic.Uint64 // failed posts / sends (batches)
}

// soakMain is the `fleetgen soak` entry point.
func soakMain(args []string) {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	var (
		target      = fs.String("target", "http://localhost:8080", "fleetserver or router base URL (admin scrapes always go here)")
		transport   = fs.String("transport", "json", "ingest door to load: json, binary, or udp")
		udpAddr     = fs.String("udp-addr", "", "with -transport udp: the server's -udp-listen address (host:port)")
		vehicles    = fs.Int("vehicles", 1_000_000, "distinct vehicle IDs to cycle through")
		batch       = fs.Int("batch", 100, "reports per batch (one POST or one datagram)")
		concurrency = fs.Int("concurrency", 4, "concurrent sender workers")
		duration    = fs.Duration("duration", 10*time.Second, "how long to sustain the load")
		authToken   = fs.String("auth-token", "", "bearer token for a guarded /telemetry endpoint")
		quantiles   = fs.Bool("quantiles", false, "scrape GET /metrics after the run and print server-side ingest histograms")
		readMode    = fs.Bool("read", false, "soak the read path instead: a mixed GET workload (see -read-mix) reported with req/s, 304 share and server-side latency quantiles")
		readMix     = fs.String("read-mix", "80/15/5", "with -read: percent mix of vehicle-forecast/fleet-forecast/plan GETs (must sum to 100)")
		conditional = fs.Bool("conditional", false, "with -read: replay each route's last ETag as If-None-Match, measuring the 304 steady state")
	)
	_ = fs.Parse(args)
	if *vehicles <= 0 || *batch <= 0 || *concurrency <= 0 {
		log.Fatal("soak: -vehicles, -batch and -concurrency must be positive")
	}
	if *readMode {
		readSoakMain(*target, *readMix, *conditional, *vehicles, *concurrency, *duration)
		return
	}
	if *transport == "udp" && *udpAddr == "" {
		log.Fatal("soak: -transport udp needs -udp-addr (the server's -udp-listen address)")
	}

	before, err := scrapeIngestTotals(*target)
	if err != nil {
		log.Fatalf("soak: reading %s/admin/ingest before the run: %v", *target, err)
	}

	var ctr soakCounters
	deadline := time.Now().Add(*duration)
	next := new(atomic.Uint64) // global report index: vehicle = idx % vehicles
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var send func(reports []ingest.Report) error
			switch *transport {
			case "json":
				send = newHTTPSender(&ctr, *target, *authToken, false)
			case "binary":
				send = newHTTPSender(&ctr, *target, *authToken, true)
			case "udp":
				conn, err := net.Dial("udp", *udpAddr)
				if err != nil {
					log.Fatalf("soak: dialing %s: %v", *udpAddr, err)
				}
				defer conn.Close()
				send = newUDPSender(conn)
			default:
				log.Fatalf("soak: unknown transport %q (want json, binary or udp)", *transport)
			}
			runSoakWorker(&ctr, send, next, *vehicles, *batch, deadline)
		}()
	}
	wg.Wait()

	after, err := scrapeIngestTotals(*target)
	if err != nil {
		log.Fatalf("soak: reading %s/admin/ingest after the run: %v", *target, err)
	}
	report(&ctr, *transport, *duration, before, after)

	if *quantiles {
		printServerQuantiles(*target, *transport)
	}
}

// runSoakWorker sends batches until the deadline, reusing its report
// slice across batches.
func runSoakWorker(ctr *soakCounters, send func([]ingest.Report) error, next *atomic.Uint64, vehicles, batch int, deadline time.Time) {
	reports := make([]ingest.Report, batch)
	// Every generated day lands inside the store's accept window; the
	// base sits far enough back that a year of distinct days fits.
	base := time.Now().UTC().Truncate(24*time.Hour).AddDate(-2, 0, 0)
	for time.Now().Before(deadline) {
		first := next.Add(uint64(batch)) - uint64(batch)
		for i := range reports {
			idx := first + uint64(i)
			v := idx % uint64(vehicles)
			reports[i] = ingest.Report{
				VehicleID: fmt.Sprintf("soak-%07d", v),
				Date:      base.AddDate(0, 0, int((idx/uint64(vehicles))%365)),
				Seconds:   float64(idx % 86_000),
			}
		}
		if err := send(reports); err != nil {
			ctr.errors.Add(1)
			continue
		}
		ctr.batches.Add(1)
		ctr.sent.Add(uint64(batch))
	}
}

// newHTTPSender returns a worker-local sender posting batches to
// /telemetry, JSON or framed binary, crediting acks to ctr.
func newHTTPSender(ctr *soakCounters, target, authToken string, binary bool) func([]ingest.Report) error {
	client := &http.Client{Timeout: time.Minute}
	url := target + "/telemetry"
	return func(reports []ingest.Report) error {
		var body []byte
		var contentType string
		var err error
		if binary {
			contentType = ingest.ContentTypeBinary
			body, err = ingest.EncodeWireFrame(reports)
		} else {
			contentType = "application/json"
			rj := make([]serve.ReportJSON, len(reports))
			for i, r := range reports {
				rj[i] = serve.ReportJSON{Vehicle: r.VehicleID, Date: r.Date.Format("2006-01-02"), Seconds: r.Seconds}
			}
			body, err = json.Marshal(serve.TelemetryRequest{Reports: rj})
		}
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		if authToken != "" {
			req.Header.Set("Authorization", "Bearer "+authToken)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server answered %s", resp.Status)
		}
		var out serve.TelemetryResponse
		if err := json.Unmarshal(payload, &out); err != nil {
			return err
		}
		ctr.acked.Add(uint64(out.Accepted + out.Rejected))
		ctr.rejected.Add(uint64(out.Rejected))
		return nil
	}
}

// newUDPSender returns a sender writing one framed datagram per batch.
func newUDPSender(conn net.Conn) func([]ingest.Report) error {
	return func(reports []ingest.Report) error {
		frame, err := ingest.EncodeWireFrame(reports)
		if err != nil {
			return err
		}
		_, err = conn.Write(frame)
		return err
	}
}

// ingestTotals is the slice of GET /admin/ingest the soak accounting
// needs. A single fleetserver answers the flat shape; a cluster router
// answers {"shards": {name: stats}}, which sums to the cluster total.
type ingestTotals struct {
	Accepted uint64                  `json:"accepted"`
	Rejected uint64                  `json:"rejected"`
	Shards   map[string]ingestTotals `json:"shards"`
}

func scrapeIngestTotals(target string) (ingestTotals, error) {
	var out ingestTotals
	resp, err := http.Get(target + "/admin/ingest")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("server answered %s", resp.Status)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, err
	}
	for _, s := range out.Shards {
		out.Accepted += s.Accepted
		out.Rejected += s.Rejected
	}
	out.Shards = nil
	return out, nil
}

// report prints the closing accounting.
func report(ctr *soakCounters, transport string, d time.Duration, before, after ingestTotals) {
	sent := ctr.sent.Load()
	applied := (after.Accepted + after.Rejected) - (before.Accepted + before.Rejected)
	loss := int64(sent) - int64(applied)
	rate := float64(sent) / d.Seconds()
	log.Printf("soak %s: %d batches, %d reports in %s (%.0f reports/s), %d send errors",
		transport, ctr.batches.Load(), sent, d, rate, ctr.errors.Load())
	if transport == "udp" {
		log.Printf("soak %s: no acks (UDP is ack-less); server applied %d of %d sent — loss %d (%.2f%%)",
			transport, applied, sent, loss, 100*float64(loss)/math.Max(float64(sent), 1))
	} else {
		log.Printf("soak %s: acked %d (rejected %d); server applied %d of %d sent — acknowledged loss %d (must be 0)",
			transport, ctr.acked.Load(), ctr.rejected.Load(), applied, sent, loss)
	}
}

// printServerQuantiles scrapes GET /metrics and prints the server-side
// view of the run: batch-size histogram quantiles and the per-door
// counters.
func printServerQuantiles(target, transport string) {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		log.Printf("soak: scraping /metrics: %v", err)
		return
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		log.Printf("soak: reading /metrics: %v", err)
		return
	}
	samples, err := obs.ParseText(string(text))
	if err != nil {
		log.Printf("soak: parsing /metrics: %v", err)
		return
	}

	// Cumulative buckets of fleet_ingest_batch_reports, keyed by "le".
	type bucket struct {
		bound float64
		count uint64
	}
	var buckets []bucket
	for _, s := range samples {
		switch s.Name {
		case "fleet_ingest_batch_reports_bucket":
			bound := math.Inf(1)
			if le := s.Label("le"); le != "+Inf" {
				fmt.Sscanf(le, "%g", &bound)
			}
			buckets = append(buckets, bucket{bound, uint64(s.Value)})
		case "fleet_ingest_door_batches", "fleet_ingest_door_reports",
			"fleet_ingest_door_rejected", "fleet_ingest_door_allocs_per_report":
			if s.Label("door") == transport {
				log.Printf("soak server: %s{door=%q} = %g", s.Name, transport, s.Value)
			}
		case "fleet_udp_datagrams", "fleet_udp_frame_errors", "fleet_udp_apply_errors":
			if transport == "udp" {
				log.Printf("soak server: %s = %g", s.Name, s.Value)
			}
		}
	}
	if len(buckets) > 0 {
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].bound < buckets[j].bound })
		bounds := make([]float64, len(buckets))
		cum := make([]uint64, len(buckets))
		for i, b := range buckets {
			bounds[i], cum[i] = b.bound, b.count
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			log.Printf("soak server: fleet_ingest_batch_reports p%.0f ≈ %.0f", q*100, obs.QuantileFromBuckets(bounds, cum, q))
		}
	}
}
