// Command fleetgen generates a synthetic telematics fleet dataset and
// either writes it as CSV (vehicle,model,class,date,seconds) or replays
// it as live telemetry against a running fleetserver. The dataset is the
// documented substitute for the paper's proprietary Tierra S.p.A. data
// (DESIGN.md, substitution S1).
//
// With -post URL the generated days are sliced into chronological
// batches and POSTed to URL/telemetry, so the full live loop —
// collector batches → ingest store → incremental retrain → forecasts —
// is demoable end-to-end:
//
//	fleetgen -o fleet.csv                                # CSV dataset
//	fleetgen -vehicles 24 -post http://localhost:8080    # live replay
//
// The soak subcommand (see soak.go) is the ingest load harness: it
// sustains synthetic telemetry against /telemetry over the JSON,
// binary-HTTP or UDP door and reports accept/ack/loss:
//
//	fleetgen soak -target http://localhost:8080 -transport binary \
//	    -vehicles 1000000 -duration 30s -concurrency 8
//
// With soak -read it instead sustains a mixed GET workload against the
// read path (per-vehicle forecast / fleet forecast / plan, ratio via
// -read-mix) and reports req/s, the 304 share under -conditional
// replay, and the server-side latency quantiles (see readsoak.go):
//
//	fleetgen soak -read -target http://localhost:8080 \
//	    -read-mix 80/15/5 -conditional -duration 30s
//
// Usage:
//
//	fleetgen [-vehicles 24] [-days 1735] [-seed 42] [-corrupt]
//	         [-o fleet.csv | -post http://host:8080 [-batch-days 90]
//	          [-auth-token SECRET]]
//	fleetgen soak -target URL [-transport json|binary|udp] ...
//	fleetgen soak -read -target URL [-read-mix 80/15/5] [-conditional] ...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/telematics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetgen: ")

	if len(os.Args) > 1 && os.Args[1] == "soak" {
		soakMain(os.Args[2:])
		return
	}

	var (
		vehicles  = flag.Int("vehicles", 24, "fleet size")
		days      = flag.Int("days", 1735, "acquisition horizon in days")
		seed      = flag.Uint64("seed", 42, "master random seed")
		corrupt   = flag.Bool("corrupt", false, "inject missing/inconsistent values for the cleaning step")
		out       = flag.String("o", "-", "output file ('-' = stdout)")
		post      = flag.String("post", "", "replay the fleet as POST /telemetry batches against this fleetserver base URL instead of writing CSV")
		batchDays = flag.Int("batch-days", 90, "with -post: days of fleet-wide telemetry per batch")
		authToken = flag.String("auth-token", "", "with -post: bearer token for a guarded /telemetry endpoint")
	)
	flag.Parse()

	cfg := telematics.DefaultFleetConfig()
	cfg.Vehicles = *vehicles
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Corrupt = *corrupt

	fleet, err := telematics.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *post != "" {
		if err := replay(fleet, *post, *batchDays, *authToken); err != nil {
			log.Fatal(err)
		}
		return
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := fleet.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: wrote %d vehicles x %d days\n", *vehicles, *days)
}

// replay streams the generated fleet chronologically: each batch holds
// batchDays days of every vehicle's telemetry, mimicking periodic
// collector uploads. NaN days (simulated missing reports) are skipped —
// a collector that never reported a day sends nothing, it does not
// send NaN over the wire.
func replay(fleet *telematics.Fleet, baseURL string, batchDays int, authToken string) error {
	if batchDays <= 0 {
		return fmt.Errorf("batch-days must be positive, got %d", batchDays)
	}
	url := baseURL + "/telemetry"
	client := &http.Client{Timeout: 5 * time.Minute}

	horizon := 0
	for _, v := range fleet.Vehicles {
		if len(v.RawU) > horizon {
			horizon = len(v.RawU)
		}
	}

	var totalAccepted, totalRejected, totalChanged, batches int
	retrains := 0
	for from := 0; from < horizon; from += batchDays {
		to := from + batchDays
		if to > horizon {
			to = horizon
		}
		var reports []serve.ReportJSON
		for _, v := range fleet.Vehicles {
			for t := from; t < to && t < len(v.RawU); t++ {
				if math.IsNaN(v.RawU[t]) {
					continue
				}
				reports = append(reports, serve.ReportJSON{
					Vehicle: v.Profile.ID,
					Date:    v.Start.AddDate(0, 0, t).Format("2006-01-02"),
					Seconds: v.RawU[t],
				})
			}
		}
		if len(reports) == 0 {
			continue
		}
		// Stay under the server's per-batch report cap even for fleets
		// where batchDays x vehicles is huge: split into sub-batches.
		const maxReportsPerPost = 400_000
		for off := 0; off < len(reports); off += maxReportsPerPost {
			end := off + maxReportsPerPost
			if end > len(reports) {
				end = len(reports)
			}
			res, err := postBatch(client, url, authToken, reports[off:end])
			if err != nil {
				return fmt.Errorf("batch days [%d,%d): %w", from, to, err)
			}
			batches++
			totalAccepted += res.Accepted
			totalRejected += res.Rejected
			totalChanged += res.Changed
			if res.RetrainStarted {
				retrains++
			}
			log.Printf("days [%4d,%4d): %5d reports, %d rejected, retrain_started=%v",
				from, to, end-off, res.Rejected, res.RetrainStarted)
		}
	}
	log.Printf("replayed %d batches: %d accepted (%d changed content), %d rejected, %d retrains kicked",
		batches, totalAccepted, totalChanged, totalRejected, retrains)
	return nil
}

func postBatch(client *http.Client, url, authToken string, reports []serve.ReportJSON) (serve.TelemetryResponse, error) {
	body, err := json.Marshal(serve.TelemetryRequest{Reports: reports})
	if err != nil {
		return serve.TelemetryResponse{}, err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return serve.TelemetryResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if authToken != "" {
		req.Header.Set("Authorization", "Bearer "+authToken)
	}
	resp, err := client.Do(req)
	if err != nil {
		return serve.TelemetryResponse{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return serve.TelemetryResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.TelemetryResponse{}, fmt.Errorf("server answered %s: %s", resp.Status, bytes.TrimSpace(payload))
	}
	var out serve.TelemetryResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return serve.TelemetryResponse{}, fmt.Errorf("decoding server response: %w", err)
	}
	return out, nil
}
