// Command fleetgen generates a synthetic telematics fleet dataset and
// writes it as CSV (vehicle,model,class,date,seconds). The dataset is the
// documented substitute for the paper's proprietary Tierra S.p.A. data
// (DESIGN.md, substitution S1).
//
// Usage:
//
//	fleetgen [-vehicles 24] [-days 1735] [-seed 42] [-corrupt] [-o fleet.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/telematics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetgen: ")

	var (
		vehicles = flag.Int("vehicles", 24, "fleet size")
		days     = flag.Int("days", 1735, "acquisition horizon in days")
		seed     = flag.Uint64("seed", 42, "master random seed")
		corrupt  = flag.Bool("corrupt", false, "inject missing/inconsistent values for the cleaning step")
		out      = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	cfg := telematics.DefaultFleetConfig()
	cfg.Vehicles = *vehicles
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Corrupt = *corrupt

	fleet, err := telematics.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := fleet.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fleetgen: wrote %d vehicles x %d days\n", *vehicles, *days)
}
