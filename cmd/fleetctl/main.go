// Command fleetctl inspects a fleet CSV (as produced by fleetgen) and
// serves the deployed-system workflow from the command line: categorize
// vehicles, show maintenance cycles, and forecast the next maintenance
// date for every vehicle.
//
// Usage:
//
//	fleetctl -data fleet.csv status            # categories + cycles
//	fleetctl -data fleet.csv cycles -vehicle v01
//	fleetctl -data fleet.csv predict [-w 6] [-workers 8] [-shards 4]
//	                                           # train + forecast fleet
//	                                           # (-shards N partitions
//	                                           # training; same output)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/engine"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetctl: ")

	var (
		data    = flag.String("data", "", "fleet CSV file (required)")
		vehicle = flag.String("vehicle", "", "vehicle ID filter (cycles)")
		window  = flag.Int("w", 6, "feature window W for predict")
		workers = flag.Int("workers", 0, "training pool size for predict (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "train predict on this many consistent-hash engine shards (output is bit-identical to -shards 1)")
	)
	flag.Parse()
	if *data == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fleetctl -data fleet.csv [flags] status|cycles|predict")
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := telematics.ReadCSV(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}

	prepared := make([]*dataprep.PreparedVehicle, 0, len(fleet.Vehicles))
	for _, v := range fleet.Vehicles {
		p, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, timeseries.DefaultAllowance)
		if err != nil {
			log.Fatal(err)
		}
		prepared = append(prepared, p)
	}

	switch flag.Arg(0) {
	case "status":
		status(prepared)
	case "cycles":
		cycles(prepared, *vehicle)
	case "predict":
		predict(prepared, *window, *workers, *shards)
	default:
		log.Fatalf("unknown subcommand %q (want status, cycles or predict)", flag.Arg(0))
	}
}

func status(prepared []*dataprep.PreparedVehicle) {
	fmt.Printf("%-6s %-10s %8s %10s %12s %9s\n", "veh", "category", "days", "cycles", "total-usage", "repaired")
	for _, p := range prepared {
		cat := core.Categorize(p.Series)
		fmt.Printf("%-6s %-10s %8d %10d %12.0f %9d\n",
			p.ID, cat, len(p.Series.U), len(p.Series.CompleteCycles()), p.Series.CumulativeUsage(), p.Clean.Total())
	}
}

func cycles(prepared []*dataprep.PreparedVehicle, vehicle string) {
	for _, p := range prepared {
		if vehicle != "" && p.ID != vehicle {
			continue
		}
		fmt.Printf("vehicle %s (%d cycles):\n", p.ID, len(p.Series.Cycles))
		for _, c := range p.Series.Cycles {
			state := "complete"
			if !c.Complete {
				state = "in progress"
			}
			fmt.Printf("  cycle %2d: days [%4d, %4d) = %3d days, usage %9.0f s, %s\n",
				c.Index, c.Start, c.End, c.Days(), c.Usage, state)
		}
	}
}

func predict(prepared []*dataprep.PreparedVehicle, window, workers, shards int) {
	cfg := core.DefaultPredictorConfig()
	cfg.Window = window
	fleet := make([]engine.Vehicle, 0, len(prepared))
	for _, p := range prepared {
		fleet = append(fleet, engine.Vehicle{Series: p.Series, Start: p.Start})
	}

	// Gather (forecasts, statuses, errors) from one engine or from a
	// sharded group; the sharded path merges by vehicle ID and is
	// bit-identical to the unsharded one (per-vehicle seeds are
	// ID-derived and the donor pool is fleet-wide on every shard).
	var (
		forecasts []core.Forecast
		statuses  = make(map[string]core.VehicleStatus)
		fcErrors  = make(map[string]string)
	)
	if shards <= 1 {
		eng, err := engine.New(engine.Config{Predictor: cfg, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		snap, err := eng.Retrain(context.Background(), fleet)
		if err != nil {
			log.Fatal(err)
		}
		forecasts = snap.Forecasts
		statuses = snap.StatusByID
		fcErrors = snap.ForecastErrors
	} else {
		sharded, err := cluster.NewSharded(cluster.ShardedConfig{
			Engine: engine.Config{Predictor: cfg, Workers: workers},
			Base:   func(context.Context) ([]engine.Vehicle, error) { return fleet, nil },
			Shards: shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sharded.RetrainAll(context.Background()); err != nil {
			log.Fatal(err)
		}
		for _, sh := range sharded.Shards() {
			snap := sh.Engine.Snapshot()
			forecasts = append(forecasts, snap.Forecasts...)
			for id, st := range snap.StatusByID {
				statuses[id] = st
			}
			for id, msg := range snap.ForecastErrors {
				fcErrors[id] = msg
			}
		}
		sort.Slice(forecasts, func(i, j int) bool { return forecasts[i].VehicleID < forecasts[j].VehicleID })
	}

	ids := make([]string, 0, len(fcErrors))
	for id := range fcErrors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		log.Printf("no forecast for %s: %s", id, fcErrors[id])
	}
	fmt.Printf("%-6s %-10s %-12s %-5s %10s %12s %10s\n", "veh", "category", "strategy", "alg", "days-left", "due-date", "val-MRE")
	for _, fc := range forecasts {
		st := statuses[fc.VehicleID]
		val := "-"
		if !math.IsNaN(st.ValidationMRE) {
			val = fmt.Sprintf("%.2f", st.ValidationMRE)
		}
		fmt.Printf("%-6s %-10s %-12s %-5s %10.1f %12s %10s\n",
			fc.VehicleID, fc.Category, fc.Strategy, st.Algorithm, fc.DaysLeft, fc.DueDate.Format("2006-01-02"), val)
	}
}
