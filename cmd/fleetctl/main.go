// Command fleetctl inspects a fleet CSV (as produced by fleetgen) and
// serves the deployed-system workflow from the command line: categorize
// vehicles, show maintenance cycles, forecast the next maintenance
// date for every vehicle, and inspect a running fleetserver's ingest
// store (durability/WAL state included).
//
// Usage:
//
//	fleetctl -data fleet.csv status            # categories + cycles
//	fleetctl -data fleet.csv cycles -vehicle v01
//	fleetctl -data fleet.csv predict [-w 6] [-workers 8] [-shards 4]
//	                                           # train + forecast fleet
//	                                           # (-shards N partitions
//	                                           # training; same output)
//	fleetctl ingest [-url http://host:8080]    # live ingest-store stats
//	                                           # (vehicles, WAL segments,
//	                                           # replay, checkpoint) from
//	                                           # a server or a cluster
//	                                           # router
//	fleetctl metrics [-url http://host:8080]   # scrape /metrics and
//	                                           # pretty-print readiness,
//	                                           # generation, p50/p99 route
//	                                           # latencies and WAL state,
//	                                           # grouped per shard
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetctl: ")

	var (
		data    = flag.String("data", "", "fleet CSV file (required except for ingest)")
		vehicle = flag.String("vehicle", "", "vehicle ID filter (cycles)")
		window  = flag.Int("w", 6, "feature window W for predict")
		workers = flag.Int("workers", 0, "training pool size for predict (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "train predict on this many consistent-hash engine shards (output is bit-identical to -shards 1)")
		url     = flag.String("url", "http://127.0.0.1:8080", "fleetserver (or cluster router) base URL for ingest")
	)
	flag.Parse()
	if flag.NArg() >= 1 && flag.Arg(0) == "ingest" {
		// Subcommand-local flags, so both `fleetctl ingest -url X` and
		// `fleetctl -url X ingest` work.
		fs := flag.NewFlagSet("ingest", flag.ExitOnError)
		subURL := fs.String("url", *url, "fleetserver (or cluster router) base URL")
		_ = fs.Parse(flag.Args()[1:])
		if err := ingestStats(*subURL); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() >= 1 && flag.Arg(0) == "metrics" {
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		subURL := fs.String("url", *url, "fleetserver (or cluster router) base URL")
		_ = fs.Parse(flag.Args()[1:])
		if err := metricsSummary(*subURL); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *data == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fleetctl -data fleet.csv [flags] status|cycles|predict")
		fmt.Fprintln(os.Stderr, "       fleetctl ingest [-url http://host:8080]")
		fmt.Fprintln(os.Stderr, "       fleetctl metrics [-url http://host:8080]")
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := telematics.ReadCSV(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}

	prepared := make([]*dataprep.PreparedVehicle, 0, len(fleet.Vehicles))
	for _, v := range fleet.Vehicles {
		p, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, timeseries.DefaultAllowance)
		if err != nil {
			log.Fatal(err)
		}
		prepared = append(prepared, p)
	}

	switch flag.Arg(0) {
	case "status":
		status(prepared)
	case "cycles":
		cycles(prepared, *vehicle)
	case "predict":
		predict(prepared, *window, *workers, *shards)
	default:
		log.Fatalf("unknown subcommand %q (want status, cycles or predict)", flag.Arg(0))
	}
}

// ingestStats fetches GET /admin/ingest from a fleetserver — or a
// cluster router, whose payload nests per-shard stats — and
// pretty-prints the store and WAL/durability state.
func ingestStats(baseURL string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(baseURL + "/admin/ingest")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/admin/ingest answered %s: %s", baseURL, resp.Status, body)
	}

	// A router payload is {"shards":{name:stats,...}}; a single server
	// answers the stats object directly.
	var router serve.RouterIngestJSON
	if err := json.Unmarshal(body, &router); err == nil && len(router.Shards) > 0 {
		names := make([]string, 0, len(router.Shards))
		for name := range router.Shards {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("=== shard %s ===\n", name)
			printIngestStats(router.Shards[name])
		}
		return nil
	}
	var st serve.IngestStatsJSON
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decoding /admin/ingest payload: %w", err)
	}
	printIngestStats(st)
	return nil
}

func printIngestStats(st serve.IngestStatsJSON) {
	fmt.Printf("vehicles      %d\n", st.Vehicles)
	fmt.Printf("reports       %d accepted, %d rejected, %d changed content (seq %d)\n",
		st.Accepted, st.Rejected, st.Changed, st.Seq)
	fmt.Printf("prep cache    %d hits, %d misses\n", st.PrepCacheHits, st.PrepCacheMisses)
	if st.RetrainDirtyThreshold > 0 {
		fmt.Printf("retrain       auto at %d dirty vehicles (%d dirty now)\n",
			st.RetrainDirtyThreshold, len(st.DirtySinceLastRetrain))
	} else {
		fmt.Printf("retrain       manual/periodic only\n")
	}
	if st.WAL == nil {
		fmt.Printf("durability    in-memory (no WAL)\n")
		return
	}
	w := st.WAL
	fmt.Printf("wal           %s\n", w.Dir)
	fmt.Printf("  segments    %d (%d bytes, records %d..%d, %d compacted)\n",
		w.Segments, w.Bytes, w.FirstIndex, w.LastIndex, w.CompactedSegments)
	fmt.Printf("  appends     %d (%d rotations, %d fsyncs, last fsync %s)\n",
		w.Appends, w.Rotations, w.Fsyncs, orNever(w.LastFsync))
	fmt.Printf("  replay      %d records in %.3fs, %d truncated-tail events\n",
		w.ReplayRecords, w.ReplaySeconds, w.TruncatedTailEvents)
	fmt.Printf("  checkpoint  wal index %d, seq %d, written %s\n",
		w.CheckpointIndex, w.CheckpointSeq, orNever(w.LastCheckpoint))
}

// metricsSummary scrapes GET /metrics — from a single fleetserver or a
// cluster router, whose merged exposition labels each shard's series
// with shard="name" — and pretty-prints the key series: readiness,
// generation, WAL state, and p50/p99 request latency per route,
// estimated from the cumulative histogram buckets.
func metricsSummary(baseURL string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/metrics answered %s: %s", baseURL, resp.Status, body)
	}
	samples, err := obs.ParseText(string(body))
	if err != nil {
		return fmt.Errorf("parsing /metrics exposition: %w", err)
	}

	// Group by the shard label ("" = a single server, or the router's
	// own series on a cluster scrape).
	type routeKey struct{ shard, route string }
	gauges := make(map[string]map[string]float64)
	buckets := make(map[routeKey]map[float64]uint64)
	for _, s := range samples {
		shard := s.Label("shard")
		if s.Name == "fleet_http_request_seconds_bucket" {
			le, err := strconv.ParseFloat(s.Label("le"), 64)
			if err != nil {
				continue
			}
			k := routeKey{shard, s.Label("route")}
			if buckets[k] == nil {
				buckets[k] = make(map[float64]uint64)
			}
			buckets[k][le] = uint64(s.Value)
			continue
		}
		if gauges[shard] == nil {
			gauges[shard] = make(map[string]float64)
		}
		if len(s.Labels) == 0 || (len(s.Labels) == 1 && shard != "") {
			gauges[shard][s.Name] = s.Value
		}
	}

	shards := make(map[string]bool)
	for sh := range gauges {
		shards[sh] = true
	}
	for k := range buckets {
		shards[k.shard] = true
	}
	names := make([]string, 0, len(shards))
	for sh := range shards {
		names = append(names, sh)
	}
	sort.Strings(names) // "" (this process) sorts first

	for _, sh := range names {
		title := "this process"
		if sh != "" {
			title = "shard " + sh
		}
		fmt.Printf("=== %s ===\n", title)
		g := gauges[sh]
		if _, ok := g["fleet_ready"]; ok {
			fmt.Printf("ready         %.0f (generation %.0f, %.0f vehicles, retraining %.0f)\n",
				g["fleet_ready"], g["fleet_generation"], g["fleet_vehicles"], g["fleet_retraining"])
			fmt.Printf("last train    %.1fs (%.0f reused, %.0f retrained, %.0f failed)\n",
				g["fleet_train_seconds"], g["fleet_vehicles_reused"], g["fleet_vehicles_retrained"], g["fleet_vehicles_failed"])
		}
		if up, ok := g["fleet_shard_up"]; ok {
			fmt.Printf("up            %.0f\n", up)
		}
		if segs, ok := g["fleet_wal_segments"]; ok {
			fmt.Printf("wal           %.0f segments, %.0f bytes, %.0f appends, %.0f fsyncs\n",
				segs, g["fleet_wal_bytes"], g["fleet_wal_appends"], g["fleet_wal_fsyncs"])
		}

		var routes []string
		for k := range buckets {
			if k.shard == sh {
				routes = append(routes, k.route)
			}
		}
		sort.Strings(routes)
		header := false
		for _, route := range routes {
			bs := buckets[routeKey{sh, route}]
			bounds := make([]float64, 0, len(bs))
			for le := range bs {
				bounds = append(bounds, le)
			}
			sort.Float64s(bounds)
			cum := make([]uint64, len(bounds))
			for i, le := range bounds {
				cum[i] = bs[le]
			}
			if len(cum) == 0 || cum[len(cum)-1] == 0 {
				continue
			}
			if !header {
				fmt.Printf("routes:\n")
				header = true
			}
			p50 := obs.QuantileFromBuckets(bounds, cum, 0.50)
			p99 := obs.QuantileFromBuckets(bounds, cum, 0.99)
			fmt.Printf("  %-34s n=%-7d p50 %9.3fms  p99 %9.3fms\n",
				route, cum[len(cum)-1], p50*1000, p99*1000)
		}
	}
	return nil
}

func orNever(s string) string {
	if s == "" {
		return "never"
	}
	return s
}

func status(prepared []*dataprep.PreparedVehicle) {
	fmt.Printf("%-6s %-10s %8s %10s %12s %9s\n", "veh", "category", "days", "cycles", "total-usage", "repaired")
	for _, p := range prepared {
		cat := core.Categorize(p.Series)
		fmt.Printf("%-6s %-10s %8d %10d %12.0f %9d\n",
			p.ID, cat, len(p.Series.U), len(p.Series.CompleteCycles()), p.Series.CumulativeUsage(), p.Clean.Total())
	}
}

func cycles(prepared []*dataprep.PreparedVehicle, vehicle string) {
	for _, p := range prepared {
		if vehicle != "" && p.ID != vehicle {
			continue
		}
		fmt.Printf("vehicle %s (%d cycles):\n", p.ID, len(p.Series.Cycles))
		for _, c := range p.Series.Cycles {
			state := "complete"
			if !c.Complete {
				state = "in progress"
			}
			fmt.Printf("  cycle %2d: days [%4d, %4d) = %3d days, usage %9.0f s, %s\n",
				c.Index, c.Start, c.End, c.Days(), c.Usage, state)
		}
	}
}

func predict(prepared []*dataprep.PreparedVehicle, window, workers, shards int) {
	cfg := core.DefaultPredictorConfig()
	cfg.Window = window
	fleet := make([]engine.Vehicle, 0, len(prepared))
	for _, p := range prepared {
		fleet = append(fleet, engine.Vehicle{Series: p.Series, Start: p.Start})
	}

	// Gather (forecasts, statuses, errors) from one engine or from a
	// sharded group; the sharded path merges by vehicle ID and is
	// bit-identical to the unsharded one (per-vehicle seeds are
	// ID-derived and the donor pool is fleet-wide on every shard).
	var (
		forecasts []core.Forecast
		statuses  = make(map[string]core.VehicleStatus)
		fcErrors  = make(map[string]string)
	)
	if shards <= 1 {
		eng, err := engine.New(engine.Config{Predictor: cfg, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		snap, err := eng.Retrain(context.Background(), fleet)
		if err != nil {
			log.Fatal(err)
		}
		forecasts = snap.Forecasts
		statuses = snap.StatusByID
		fcErrors = snap.ForecastErrors
	} else {
		sharded, err := cluster.NewSharded(cluster.ShardedConfig{
			Engine: engine.Config{Predictor: cfg, Workers: workers},
			Base:   func(context.Context) ([]engine.Vehicle, error) { return fleet, nil },
			Shards: shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sharded.RetrainAll(context.Background()); err != nil {
			log.Fatal(err)
		}
		for _, sh := range sharded.Shards() {
			snap := sh.Engine.Snapshot()
			forecasts = append(forecasts, snap.Forecasts...)
			for id, st := range snap.StatusByID {
				statuses[id] = st
			}
			for id, msg := range snap.ForecastErrors {
				fcErrors[id] = msg
			}
		}
		sort.Slice(forecasts, func(i, j int) bool { return forecasts[i].VehicleID < forecasts[j].VehicleID })
	}

	ids := make([]string, 0, len(fcErrors))
	for id := range fcErrors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		log.Printf("no forecast for %s: %s", id, fcErrors[id])
	}
	fmt.Printf("%-6s %-10s %-12s %-5s %10s %12s %10s\n", "veh", "category", "strategy", "alg", "days-left", "due-date", "val-MRE")
	for _, fc := range forecasts {
		st := statuses[fc.VehicleID]
		val := "-"
		if !math.IsNaN(st.ValidationMRE) {
			val = fmt.Sprintf("%.2f", st.ValidationMRE)
		}
		fmt.Printf("%-6s %-10s %-12s %-5s %10.1f %12s %10s\n",
			fc.VehicleID, fc.Category, fc.Strategy, st.Algorithm, fc.DaysLeft, fc.DueDate.Format("2006-01-02"), val)
	}
}
