// Package repro's root benchmark harness: one benchmark per paper table
// and figure (regenerating the experiment at reduced scale), the §5.1
// per-algorithm training-time study, and the DESIGN.md ablations.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/ml"
	"repro/internal/ml/forest"
	"repro/internal/ml/gbm"
	"repro/internal/ml/tree"
	"repro/internal/rng"
	"repro/internal/similarity"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// env lazily builds a shared small-scale environment; benchmarks must
// not mutate it.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		s := experiments.SmallScale()
		s.Corrupt = true
		benchEnv, benchErr = experiments.NewEnv(s)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

var (
	fleet24Once sync.Once
	fleet24Env  *experiments.Env
	fleet24Err  error
)

// fleet24 lazily builds the paper-scale 24-vehicle fleet used by the
// fleet-training benchmarks.
func fleet24(b *testing.B) *experiments.Env {
	b.Helper()
	fleet24Once.Do(func() {
		s := experiments.FullScale()
		fleet24Env, fleet24Err = experiments.NewEnv(s)
	})
	if fleet24Err != nil {
		b.Fatal(fleet24Err)
	}
	return fleet24Env
}

// benchFleetTrain measures one full deployed-system training run — all
// 24 vehicles, candidate competition per old vehicle, cold-start
// strategies for the rest — through the engine's worker pool.
func benchFleetTrain(b *testing.B, workers int) {
	e := fleet24(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := e.TrainFleet(context.Background(), workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(snap.Statuses) != e.Scale.Vehicles {
			b.Fatalf("trained %d of %d vehicles", len(snap.Statuses), e.Scale.Vehicles)
		}
	}
}

// BenchmarkFleetTrain is the sequential reference (worker pool of 1).
func BenchmarkFleetTrain(b *testing.B) { benchFleetTrain(b, 1) }

// BenchmarkFleetTrainParallel scales the pool; per-vehicle seed
// derivation makes every variant bit-identical to BenchmarkFleetTrain,
// so the speedup is pure scheduling (expect ~linear until the core
// count or the slowest single vehicle dominates).
func BenchmarkFleetTrainParallel(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) { benchFleetTrain(b, workers) })
	}
}

// BenchmarkIncrementalRetrain measures the telemetry-update steady
// state: a retrain after exactly one of the 24 vehicles received new
// telemetry. The engine carries the 23 clean vehicles' models forward
// (hash-gated reuse), so the cost is O(changed vehicles) — expect this
// to beat BenchmarkFleetTrain by roughly the fleet size. Alternating
// between the base fleet and a one-vehicle perturbation keeps every
// iteration at exactly one dirty vehicle.
func BenchmarkIncrementalRetrain(b *testing.B) {
	e := fleet24(b)
	cfg := core.DefaultPredictorConfig()
	cfg.Seed = e.Scale.Seed
	eng, err := engine.New(engine.Config{Predictor: cfg, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := e.FleetVehicles()
	dirty := append([]engine.Vehicle(nil), base...)
	u := base[0].Series.U.Clone()
	u = append(u, u[len(u)-1])
	pert, err := timeseries.Derive(base[0].Series.ID, u, base[0].Series.Allowance)
	if err != nil {
		b.Fatal(err)
	}
	dirty[0] = engine.Vehicle{Series: pert, Start: base[0].Start}
	if _, err := eng.Retrain(context.Background(), base); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet := base
		if i%2 == 0 {
			fleet = dirty
		}
		snap, err := eng.Retrain(context.Background(), fleet)
		if err != nil {
			b.Fatal(err)
		}
		if snap.Retrained != 1 {
			b.Fatalf("retrained %d vehicles, want 1", snap.Retrained)
		}
	}
}

// BenchmarkFig1DataGeneration measures the full data path behind
// Figures 1–3: fleet synthesis plus the §3 preparation pipeline.
func BenchmarkFig1DataGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.SmallScale()
		s.Corrupt = true
		if _, err := experiments.NewEnv(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (all five algorithms, both
// training regimes).
func BenchmarkTable1(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table1(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4WindowSweep regenerates the Figure-4 window sweep.
func BenchmarkFig4WindowSweep(b *testing.B) {
	e := env(b)
	windows := []int{0, 3, 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure4(windows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the per-day error curves of Figure 5.
func BenchmarkFig5(b *testing.B) {
	e := env(b)
	t2 := []experiments.Table2Row{{Algorithm: core.RF, BestW: 3}, {Algorithm: core.BL, BestW: 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure5(t2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the cold-start study of Table 3.
func BenchmarkTable3(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table3(3); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrain measures the per-vehicle training cost of one algorithm at
// one window — the §5.1 timing table (XGB slowest, RF next, BL/LR/LSVR
// fast; cost grows super-linearly with W).
func benchTrain(b *testing.B, alg core.Algorithm, window int) {
	e := env(b)
	vs := e.Olds[0]
	cfg := core.NewOldConfig()
	cfg.Window = window
	cfg.RestrictTrain = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateOld(vs, alg, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBL(b *testing.B)   { benchTrain(b, core.BL, 0) }
func BenchmarkTrainLR(b *testing.B)   { benchTrain(b, core.LR, 0) }
func BenchmarkTrainLSVR(b *testing.B) { benchTrain(b, core.LSVR, 0) }
func BenchmarkTrainRF(b *testing.B)   { benchTrain(b, core.RF, 0) }
func BenchmarkTrainXGB(b *testing.B)  { benchTrain(b, core.XGB, 0) }

// Window-growth series for the "more than linearly with W" claim.
func BenchmarkTrainRF_W0(b *testing.B)  { benchTrain(b, core.RF, 0) }
func BenchmarkTrainRF_W6(b *testing.B)  { benchTrain(b, core.RF, 6) }
func BenchmarkTrainRF_W18(b *testing.B) { benchTrain(b, core.RF, 18) }

// BenchmarkPredict measures single-forecast latency of a fitted model —
// the quantity a deployed scheduler cares about.
func BenchmarkPredict(b *testing.B) {
	e := env(b)
	vs := e.Olds[0]
	cfg := core.NewOldConfig()
	cfg.Window = 6
	cfg.RestrictTrain = true
	res, err := core.EvaluateOld(vs, core.RF, cfg)
	if err != nil {
		b.Fatal(err)
	}
	recs, err := core.BuildRecords(vs, core.FeatureConfig{Window: 6, Normalize: true})
	if err != nil || len(recs) == 0 {
		b.Fatalf("no records: %v", err)
	}
	x := recs[len(recs)-1].X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Model.Predict(x)
	}
}

// Ablation benchmarks (DESIGN.md §5).

func BenchmarkAblationPooledVsPerVehicle(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationPooledVsPerVehicle(core.RF, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAugmentation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationAugmentation(core.RF, 3, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHistogramBins(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AblationHistogramBins(3, []int{8, 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityMeasures contrasts the paper's point-wise distance
// with the DTW extension on realistic series lengths.
func BenchmarkSimilarityMeasures(b *testing.B) {
	e := env(b)
	a := e.Olds[0].U.Slice(0, 120)
	c := e.Olds[1%len(e.Olds)].U.Slice(0, 120)
	b.Run("avg", func(b *testing.B) {
		m := similarity.AvgDistance{}
		for i := 0; i < b.N; i++ {
			if _, err := m.Distance(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dtw", func(b *testing.B) {
		m := similarity.DTW{}
		for i := 0; i < b.N; i++ {
			if _, err := m.Distance(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dtw-band14", func(b *testing.B) {
		m := similarity.BandedDTW{Band: 14}
		for i := 0; i < b.N; i++ {
			if _, err := m.Distance(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFleetGeneration isolates the telematics simulator.
func BenchmarkFleetGeneration(b *testing.B) {
	cfg := telematics.DefaultFleetConfig()
	cfg.Vehicles = 8
	cfg.Days = 1100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := telematics.GenerateFleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerive isolates the §2 series derivation.
func BenchmarkDerive(b *testing.B) {
	e := env(b)
	u := e.Olds[0].U
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.Derive("v", u, timeseries.DefaultAllowance); err != nil {
			b.Fatal(err)
		}
	}
}

// mlBenchSizes are the training-set sizes the split-engine
// micro-benchmarks sweep; 200 is roughly one vehicle's restricted
// training set, 20000 a pooled multi-vehicle one.
var mlBenchSizes = []int{200, 2000, 20000}

// mlBenchData draws a deterministic synthetic regression dataset with a
// realistic mix of column shapes: quantized (tie-heavy), continuous,
// and low-cardinality features.
func mlBenchData(n, p int, seed uint64) ([][]float64, []float64) {
	rnd := rng.New(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, p)
		for j := range x[i] {
			switch j % 3 {
			case 0:
				x[i][j] = rnd.Float64() * 10
			case 1:
				x[i][j] = float64(rnd.Intn(50)) / 5
			default:
				x[i][j] = float64(rnd.Intn(7))
			}
		}
		y[i] = 3*x[i][0] - 2*x[i][1%p] + rnd.NormFloat64()
	}
	return x, y
}

// mlBenchWorkers sweeps the intra-fit worker budget at the largest
// size. Results are bit-identical across the sweep (pinned by the
// internal/ml property tests), so any delta is pure scheduling. The
// default sweep can be overridden with MLBENCH_WORKERS=1,2,4,8 — the CI
// multi-core sweep uses that to measure worker counts this dev host
// (historically nproc=1) cannot.
var mlBenchWorkers = mlBenchWorkerList()

func mlBenchWorkerList() []int {
	if s := os.Getenv("MLBENCH_WORKERS"); s != "" {
		var out []int
		for _, part := range strings.Split(s, ",") {
			if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && v > 0 {
				out = append(out, v)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []int{1, 4, 8}
}

// BenchmarkTreeFit measures a single exact-engine CART fit across
// training-set sizes (the unit of work both ensembles multiply).
func BenchmarkTreeFit(b *testing.B) {
	for _, n := range mlBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := mlBenchData(n, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := tree.New(tree.Config{MaxDepth: 12, MinSamplesLeaf: 2})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, wk := range mlBenchWorkers {
		b.Run(fmt.Sprintf("n=20000/workers=%d", wk), func(b *testing.B) {
			x, y := mlBenchData(20000, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := tree.New(tree.Config{MaxDepth: 12, MinSamplesLeaf: 2, Workers: wk})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForestFit measures a 20-tree forest fit: all trees share one
// presorted matrix and train from bootstrap multiplicities.
func BenchmarkForestFit(b *testing.B) {
	for _, n := range mlBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := mlBenchData(n, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := forest.New(forest.Config{NEstimators: 20, MaxDepth: 12, MinSamplesLeaf: 2, Seed: 7})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, wk := range mlBenchWorkers {
		b.Run(fmt.Sprintf("n=20000/workers=%d", wk), func(b *testing.B) {
			x, y := mlBenchData(20000, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := forest.New(forest.Config{NEstimators: 20, MaxDepth: 12, MinSamplesLeaf: 2, Seed: 7, Workers: wk})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Binned-mode forest: the histogram engine at full feature width,
	// where the parent−sibling subtraction path carries the fill work.
	b.Run("n=20000/bins=256", func(b *testing.B) {
		x, y := mlBenchData(20000, 6, 42)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := forest.New(forest.Config{NEstimators: 20, MaxDepth: 12, MinSamplesLeaf: 2, Seed: 7, Bins: 256})
			if err := m.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, wk := range mlBenchWorkers {
		b.Run(fmt.Sprintf("n=20000/bins=256/workers=%d", wk), func(b *testing.B) {
			x, y := mlBenchData(20000, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := forest.New(forest.Config{NEstimators: 20, MaxDepth: 12, MinSamplesLeaf: 2, Seed: 7, Bins: 256, Workers: wk})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGBMFit measures a 50-round boosted fit: binning happens once,
// every round reuses the trainer's buffers.
func BenchmarkGBMFit(b *testing.B) {
	for _, n := range mlBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := mlBenchData(n, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := gbm.New(gbm.Config{NEstimators: 50, MaxDepth: 6, Seed: 7})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, wk := range mlBenchWorkers {
		b.Run(fmt.Sprintf("n=20000/workers=%d", wk), func(b *testing.B) {
			x, y := mlBenchData(20000, 6, 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := gbm.New(gbm.Config{NEstimators: 50, MaxDepth: 6, Seed: 7, Workers: wk})
				if err := m.Fit(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGridSearchCV measures the paper's 5-fold tuned selection for
// one vehicle and one algorithm on the coarse grid.
func BenchmarkGridSearchCV(b *testing.B) {
	e := env(b)
	vs := e.Olds[0]
	cfg := core.NewOldConfig()
	cfg.RestrictTrain = true
	cfg.GridSearch = true
	cfg.Grid = ml.Grid{"depth": {5, 10}, "estimators": {50, 100}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateOld(vs, core.RF, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkForward measures the rolling-origin evaluation protocol.
func BenchmarkWalkForward(b *testing.B) {
	e := env(b)
	vs := e.Olds[0]
	cfg := core.NewWalkForwardConfig()
	cfg.InitialTrainDays = 400
	cfg.StepDays = 120
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateWalkForward(vs, core.RF, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetClustering measures usage-profile extraction plus
// k-means over the fleet (the intro's analysis (ii)).
func BenchmarkFleetClustering(b *testing.B) {
	e := env(b)
	var points [][]float64
	for _, vs := range e.Olds {
		f, err := cluster.UsageFeatures(vs.U)
		if err != nil {
			b.Fatal(err)
		}
		points = append(points, f)
	}
	k := 3
	if k > len(points) {
		k = len(points)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, cluster.Config{K: k, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUsageForecast measures fitting + 30-day horizon of the
// usage forecaster (the intro's analysis (i)).
func BenchmarkUsageForecast(b *testing.B) {
	e := env(b)
	u := e.Olds[0].U
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := forecast.New(forecast.DefaultConfig())
		if err := f.Fit(u); err != nil {
			b.Fatal(err)
		}
		if _, err := f.Horizon(u, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftDetection measures the anomaly detector over a day of
// 10-minute reports (the intro's analysis (iii)).
func BenchmarkDriftDetection(b *testing.B) {
	rnd := rng.New(5)
	var reports []telematics.SummaryReport
	t0 := time.Date(2019, 6, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 144; i++ {
		reports = append(reports, telematics.SummaryReport{
			VehicleID:      "v1",
			PeriodStart:    t0.Add(time.Duration(i) * 10 * time.Minute),
			PeriodEnd:      t0.Add(time.Duration(i+1) * 10 * time.Minute),
			WorkSeconds:    590,
			AvgEngineSpeed: 1900 + rnd.NormFloat64()*20,
			MinOilPressure: 350 + rnd.NormFloat64()*8,
			MaxCoolantTemp: 95 + rnd.NormFloat64()*1.5,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anomaly.DetectDrift(reports, anomaly.DefaultDriftConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
