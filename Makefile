# Developer entry points. CI runs the same commands.

.PHONY: build test race bench-ml

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench-ml measures the tree-learner split engine (micro fits at
# n ∈ {200, 2000, 20000} plus the paper-level RF/XGB/grid-search
# benchmarks) and emits BENCH_ml.json. Override the budget with
# BENCHTIME, e.g. `make bench-ml BENCHTIME=2s`.
BENCHTIME ?= 1s
bench-ml:
	BENCHTIME=$(BENCHTIME) ./scripts/bench_ml.sh BENCH_ml.json
