# Developer entry points. CI runs the same commands.

.PHONY: build test race bench-ml cluster-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench-ml measures the tree-learner split engine (micro fits at
# n ∈ {200, 2000, 20000} plus the paper-level RF/XGB/grid-search
# benchmarks) and emits BENCH_ml.json. Override the budget with
# BENCHTIME, e.g. `make bench-ml BENCHTIME=2s`.
BENCHTIME ?= 1s
bench-ml:
	BENCHTIME=$(BENCHTIME) ./scripts/bench_ml.sh BENCH_ml.json

# cluster-smoke spins up 3 shard fleetservers + a router, replays
# fleetgen telemetry through the guarded router, and asserts the merged
# fleet forecasts are byte-identical to a single unsharded process —
# then restarts a shard from its snapshot spill and requires it to
# serve its prior generation without cold-training.
cluster-smoke:
	./scripts/cluster_smoke.sh
