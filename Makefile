# Developer entry points. CI runs the same commands.

.PHONY: build test race bench-ml bench-serve bench-ingest bench-compare cluster-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench-ml measures the tree-learner split engine (micro fits at
# n ∈ {200, 2000, 20000} plus the paper-level RF/XGB/grid-search
# benchmarks) and emits BENCH_ml.json. Override the budget with
# BENCHTIME, e.g. `make bench-ml BENCHTIME=2s`.
BENCHTIME ?= 1s
bench-ml:
	BENCHTIME=$(BENCHTIME) ./scripts/bench_ml.sh BENCH_ml.json

# bench-serve measures the hot forecast-serving path (server mux,
# router single-owner fast path, raw cached-bytes lookup) and emits
# BENCH_serve.json. The cached-bytes row pins 0 allocs/op.
bench-serve:
	BENCHTIME=$(BENCHTIME) ./scripts/bench_serve.sh BENCH_serve.json

# bench-ingest measures the telemetry ingest doors (JSON HTTP, binary
# HTTP, UDP apply path) at the canonical 100-report batch. The binary
# row must hold ≥5x the JSON row's reports/s and ≤1 alloc/report. It
# writes a fresh run record to bench-ingest-run.json; the committed
# BENCH_ingest.json is a curated [before, after] array of such records
# — append to it rather than overwriting.
bench-ingest:
	BENCHTIME=$(BENCHTIME) ./scripts/bench_ingest.sh bench-ingest-run.json

# bench-compare diffs the latest two run records of each committed
# BENCH_*.json (the curated before/after pair of the most recent
# measurement) as a per-benchmark ratio table, and exits nonzero if a
# named hot benchmark regressed by more than 10%. CI runs it as a
# non-blocking report; run it locally after appending a new record to
# catch accidental slowdowns on the guarded paths.
BENCH_HOT ?= BenchmarkGBMFit,BenchmarkForestFit,BenchmarkTreeFit
bench-compare:
	go run ./cmd/benchcompare -hot '$(BENCH_HOT)' BENCH_ml.json BENCH_serve.json BENCH_ingest.json

# cluster-smoke spins up 3 shard fleetservers (each with its own WAL
# and snapshot spill) + a router that partitions telemetry to ring
# owners, SIGKILLs a shard mid-replay, and asserts the recovered
# cluster's merged fleet forecasts are byte-identical to a single
# unsharded process with zero acknowledged reports lost, and that raw
# telemetry storage partitions ~1/N across disjoint per-shard stores.
cluster-smoke:
	./scripts/cluster_smoke.sh
