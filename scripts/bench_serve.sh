#!/bin/sh
# Runs the serving-path benchmarks (single-vehicle forecast GET through
# the server mux, the router's single-owner fast path, the raw
# cached-bytes lookup, and the fleet-wide read path at 1k/10k/100k
# vehicles — uncached marshal vs generation-keyed cache vs conditional
# 304, on both the single server and the 3-shard router) and emits the
# results as JSON — the serving counterpart of scripts/bench_ml.sh.
#
# Usage:  scripts/bench_serve.sh [output.json]
#   BENCHTIME=2s scripts/bench_serve.sh BENCH_serve.json
#
# The output is one JSON run record in the same shape as BENCH_ml.json;
# the committed BENCH_serve.json keeps an array of such records. The
# cached-bytes variants are the zero-allocation pins: allocs_per_op
# must stay 0 (a warm hit returns already-marshaled bytes, no JSON
# encode). The fleet uncached variants are the pre-cache baseline the
# speedup acceptance (>=10x single, >=5x router at 10k) is judged
# against.
set -eu

OUT=${1:-BENCH_serve.json}
BENCHTIME=${BENCHTIME:-1s}
PATTERN='^(BenchmarkForecastServe|BenchmarkFleetForecastRead|BenchmarkFleetForecastRouter)$'

NUM_CPU=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo null) | head -1)

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/serve | tee "$TMP"

awk -v benchtime="$BENCHTIME" -v num_cpu="$NUM_CPU" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    # The -N suffix testing appends to every benchmark name IS the
    # GOMAXPROCS the run used; record it before stripping.
    if (match(name, /-[0-9]+$/)) gomaxprocs = substr(name, RSTART + 1)
    # (no suffix means the run used GOMAXPROCS=1 — testing omits -1)
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    b = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") b = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (n++) results = results ",\n"
    results = results sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, b == "" ? "null" : b, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"num_cpu\": %s,\n  \"gomaxprocs\": %s,\n  \"results\": [\n%s\n  ]\n}\n", benchtime, goos, goarch, cpu, num_cpu == "" ? "null" : num_cpu, gomaxprocs == "" ? (n ? "1" : "null") : gomaxprocs, results
}' "$TMP" > "$OUT"

echo "wrote $OUT"
