#!/bin/sh
# Runs the serving-path benchmarks (single-vehicle forecast GET through
# the server mux, the router's single-owner fast path, and the raw
# cached-bytes lookup) and emits the results as JSON — the serving
# counterpart of scripts/bench_ml.sh.
#
# Usage:  scripts/bench_serve.sh [output.json]
#   BENCHTIME=2s scripts/bench_serve.sh BENCH_serve.json
#
# The output is one JSON run record in the same shape as BENCH_ml.json;
# the committed BENCH_serve.json keeps an array of such records. The
# cached-bytes variant is the zero-allocation pin: allocs_per_op must
# stay 0 (a warm hit returns already-marshaled bytes, no JSON encode).
set -eu

OUT=${1:-BENCH_serve.json}
BENCHTIME=${BENCHTIME:-1s}
PATTERN='^BenchmarkForecastServe$'

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/serve | tee "$TMP"

awk -v benchtime="$BENCHTIME" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    b = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") b = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (n++) results = results ",\n"
    results = results sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, b == "" ? "null" : b, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"results\": [\n%s\n  ]\n}\n", benchtime, goos, goarch, cpu, results
}' "$TMP" > "$OUT"

echo "wrote $OUT"
