#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end check of the sharded serving topology.
#
# Spins up a 3-shard multi-process cluster (one fleetserver per shard
# plus a router), replays fleetgen telemetry through the router, and
# asserts:
#   1. the router's merged /fleet/forecast is byte-identical to a
#      single unsharded fleetserver over the same data;
#   2. per-vehicle routes answer from the owning shard (X-Fleet-Shard);
#   3. the router-level telemetry guard rejects a bad bearer token;
#   4. a shard restarted from its -snapshot-dir serves its prior
#      generation immediately (readyz + unchanged generation, no
#      cold-training).
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "cluster-smoke: working in $WORK"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$WORK/fleetserver" ./cmd/fleetserver
go build -o "$WORK/fleetgen" ./cmd/fleetgen

"$WORK/fleetgen" -vehicles 24 -days 900 -o "$WORK/fleet.csv"

TOKEN="smoke-secret"

wait_ready() { # url [tries]
  local url=$1 tries=${2:-100}
  for _ in $(seq "$tries"); do
    if curl -fsS "$url/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "cluster-smoke: $url never became ready" >&2
  return 1
}

# retrain_settled URL — force a waited incremental retrain so the
# serving snapshot covers everything ingested so far. Retries around
# 409s from still-running dirty-threshold builds.
retrain_settled() {
  local url=$1
  for _ in $(seq 60); do
    local code
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$url/admin/retrain?wait=1")
    if [ "$code" = "200" ]; then
      return 0
    fi
    sleep 0.5
  done
  echo "cluster-smoke: retrain at $url never settled" >&2
  return 1
}

# --- single-process reference ------------------------------------------------
# Live-ingest mode, seeded from the CSV, then fed the same replay the
# cluster gets — both sides converge on identical store content.
"$WORK/fleetserver" -data "$WORK/fleet.csv" -ingest -retrain-dirty 1 \
  -addr 127.0.0.1:18080 >"$WORK/single.log" 2>&1 &
PIDS+=($!)
wait_ready http://127.0.0.1:18080 300
"$WORK/fleetgen" -vehicles 24 -days 900 -post http://127.0.0.1:18080 \
  >"$WORK/replay-single.log" 2>&1
retrain_settled http://127.0.0.1:18080
curl -fsS http://127.0.0.1:18080/fleet/forecast >"$WORK/single.json"

# --- 3-shard cluster ---------------------------------------------------------
PEERS="shard0=http://127.0.0.1:18081,shard1=http://127.0.0.1:18082,shard2=http://127.0.0.1:18083"
for i in 0 1 2; do
  "$WORK/fleetserver" -data "$WORK/fleet.csv" -ingest -retrain-dirty 1 \
    -join "shard$i" -peers "$PEERS" \
    -snapshot-dir "$WORK/snapshots" \
    -addr "127.0.0.1:1808$((i + 1))" >"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!)
done
"$WORK/fleetserver" -peers "$PEERS" -telemetry-token "$TOKEN" \
  -addr 127.0.0.1:18084 >"$WORK/router.log" 2>&1 &
PIDS+=($!)

wait_ready http://127.0.0.1:18084 300

# Replay the same fleet through the router as live telemetry
# (broadcast to every shard, guarded by the bearer token).
"$WORK/fleetgen" -vehicles 24 -days 900 -post http://127.0.0.1:18084 \
  -auth-token "$TOKEN" >"$WORK/replay.log" 2>&1
retrain_settled http://127.0.0.1:18084

# 1. Merged forecasts equal the single-process output byte for byte.
curl -fsS http://127.0.0.1:18084/fleet/forecast >"$WORK/cluster.json"
if ! cmp -s "$WORK/single.json" "$WORK/cluster.json"; then
  echo "cluster-smoke: FAIL — sharded /fleet/forecast differs from single-process" >&2
  diff "$WORK/single.json" "$WORK/cluster.json" | head >&2 || true
  exit 1
fi
echo "cluster-smoke: merged forecasts are byte-identical to single-process"

# 2. Per-vehicle affinity: the router names the owning shard.
SHARD_HDR=$(curl -fsS -D - -o /dev/null http://127.0.0.1:18084/vehicles/v01/forecast \
  | tr -d '\r' | awk -F': ' 'tolower($1)=="x-fleet-shard"{print $2}')
case "$SHARD_HDR" in
  shard0 | shard1 | shard2) echo "cluster-smoke: v01 served by $SHARD_HDR" ;;
  *)
    echo "cluster-smoke: FAIL — missing/unknown X-Fleet-Shard header: '$SHARD_HDR'" >&2
    exit 1
    ;;
esac

# 3. The router-level guard rejects bad credentials.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Authorization: Bearer wrong' -H 'Content-Type: application/json' \
  -d '{"reports":[]}' http://127.0.0.1:18084/telemetry)
if [ "$CODE" != "401" ]; then
  echo "cluster-smoke: FAIL — bad token got $CODE, want 401" >&2
  exit 1
fi
echo "cluster-smoke: bad bearer token rejected with 401"

# 4. Snapshot restore: restart shard0 and require it to serve its
# prior generation immediately (no cold training).
GEN_BEFORE=$(curl -fsS http://127.0.0.1:18081/readyz | sed -n 's/.*"generation":\([0-9]*\).*/\1/p')
kill "${PIDS[1]}" 2>/dev/null
wait "${PIDS[1]}" 2>/dev/null || true
"$WORK/fleetserver" -data "$WORK/fleet.csv" -ingest -retrain-dirty 1 \
  -join shard0 -peers "$PEERS" -snapshot-dir "$WORK/snapshots" \
  -addr 127.0.0.1:18081 >"$WORK/shard0-restart.log" 2>&1 &
PIDS+=($!)
wait_ready http://127.0.0.1:18081 50 # restore must be fast: no training allowed
GEN_AFTER=$(curl -fsS http://127.0.0.1:18081/readyz | sed -n 's/.*"generation":\([0-9]*\).*/\1/p')
if [ -z "$GEN_AFTER" ] || [ "$GEN_AFTER" != "$GEN_BEFORE" ]; then
  echo "cluster-smoke: FAIL — restarted shard0 serves generation '$GEN_AFTER', want restored '$GEN_BEFORE'" >&2
  exit 1
fi
if ! grep -q "serving restored generation" "$WORK/shard0-restart.log"; then
  echo "cluster-smoke: FAIL — shard0 restart did not restore from snapshot-dir" >&2
  cat "$WORK/shard0-restart.log" >&2
  exit 1
fi
echo "cluster-smoke: shard0 restarted from snapshot (generation $GEN_AFTER, no cold train)"

# The restored shard still serves correct data through the router.
curl -fsS http://127.0.0.1:18084/fleet/forecast >"$WORK/cluster-restored.json"
if ! cmp -s "$WORK/single.json" "$WORK/cluster-restored.json"; then
  echo "cluster-smoke: FAIL — forecasts drifted after shard restart" >&2
  exit 1
fi
echo "cluster-smoke: PASS"
