#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end check of the sharded serving topology
# with durable, partitioned telemetry.
#
# Spins up a 3-shard multi-process cluster (one fleetserver per shard,
# each with its own WAL and snapshot spill, plus a router that routes
# telemetry to ring owners only), replays fleetgen telemetry through
# the router — SIGKILLing a shard mid-replay — and asserts:
#   1. the recovered cluster's merged /fleet/forecast is byte-identical
#      to a single unsharded fleetserver over the same data — and stays
#      byte-identical on a warm (merge-cached) second read, answers a
#      conditional GET holding the merged ETag with an empty 304, and
#      survives a mixed conditional read soak with the router's
#      merge-cache hit counter moving and the bytes unchanged after;
#   2. raw telemetry genuinely partitions ~1/N: per-shard stores are
#      disjoint, sum to the fleet, and none holds everything;
#   3. a shard SIGKILLed *after* the replay (everything acknowledged)
#      restarts from WAL + snapshot spill and serves the same bytes —
#      zero acknowledged reports lost, no cold train;
#   4. per-vehicle routes answer from the owning shard (X-Fleet-Shard);
#   5. the router-level telemetry guard rejects a bad bearer token;
#   6. WAL stats (segments, replay, checkpoint) surface in
#      /admin/ingest;
#   7. one router scrape of /metrics parses line by line, reports
#      fleet_shard_up 1 for every shard, and carries the relabeled
#      route-latency/training-stage/WAL-fsync histograms;
#   8. a single request through the router emits one trace ID, echoed
#      in X-Fleet-Trace and present in the router's and every shard's
#      structured log;
#   9. a binary-wire soak burst through the router (raw-group splitting
#      to ring owners, no re-encode) finishes with zero acknowledged
#      loss — every report a door acked was applied;
#  10. a UDP datagram burst at a shard's -udp-listen door moves the
#      datagram counter with zero frame/apply errors (fired last: UDP
#      bypasses the ring, so it would pollute the byte-compares above).
#
# Usage: scripts/cluster_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
echo "cluster-smoke: working in $WORK"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$WORK/fleetserver" ./cmd/fleetserver
go build -o "$WORK/fleetgen" ./cmd/fleetgen
go build -o "$WORK/fleetctl" ./cmd/fleetctl

"$WORK/fleetgen" -vehicles 24 -days 900 -o "$WORK/fleet.csv"

TOKEN="smoke-secret"

wait_ready() { # url [tries]
  local url=$1 tries=${2:-100}
  for _ in $(seq "$tries"); do
    if curl -fsS "$url/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "cluster-smoke: $url never became ready" >&2
  return 1
}

# retrain_settled URL — force a waited incremental retrain so the
# serving snapshots (and, in the cluster, every shard's donor pool)
# cover everything ingested so far. Retries around 409s from
# still-running dirty-threshold builds and 503s from shards still
# rebuilding after a restart.
retrain_settled() {
  local url=$1
  for _ in $(seq 120); do
    local code
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$url/admin/retrain?wait=1")
    if [ "$code" = "200" ]; then
      return 0
    fi
    sleep 0.5
  done
  echo "cluster-smoke: retrain at $url never settled" >&2
  return 1
}

start_shard() { # index
  local i=$1
  "$WORK/fleetserver" -data "$WORK/fleet.csv" -ingest -retrain-dirty 1 \
    -join "shard$i" -peers "$PEERS" \
    -snapshot-dir "$WORK/snapshots" \
    -wal-dir "$WORK/wal/shard$i" -fsync always \
    -udp-listen "127.0.0.1:1908$((i + 1))" \
    -addr "127.0.0.1:1808$((i + 1))" >>"$WORK/shard$i.log" 2>&1 &
  PIDS+=($!)
  SHARD_PID[$i]=$!
}

# --- single-process reference ------------------------------------------------
# Live-ingest mode, seeded from the CSV, then fed the same replay the
# cluster gets — both sides converge on identical store content.
"$WORK/fleetserver" -data "$WORK/fleet.csv" -ingest -retrain-dirty 1 \
  -addr 127.0.0.1:18080 >"$WORK/single.log" 2>&1 &
PIDS+=($!)
wait_ready http://127.0.0.1:18080 300
"$WORK/fleetgen" -vehicles 24 -days 900 -post http://127.0.0.1:18080 \
  >"$WORK/replay-single.log" 2>&1
retrain_settled http://127.0.0.1:18080
curl -fsS http://127.0.0.1:18080/fleet/forecast >"$WORK/single.json"

# --- 3-shard cluster with partitioned, WAL-backed telemetry ------------------
PEERS="shard0=http://127.0.0.1:18081,shard1=http://127.0.0.1:18082,shard2=http://127.0.0.1:18083"
declare -A SHARD_PID
for i in 0 1 2; do
  start_shard "$i"
done
"$WORK/fleetserver" -peers "$PEERS" -telemetry-token "$TOKEN" \
  -addr 127.0.0.1:18084 >"$WORK/router.log" 2>&1 &
PIDS+=($!)

wait_ready http://127.0.0.1:18084 300

# Replay the same fleet through the router as live telemetry — each
# vehicle's reports go only to its ring owner — and SIGKILL shard0
# mid-replay: batches owned by shard0 start failing at the router, the
# other shards keep ingesting.
"$WORK/fleetgen" -vehicles 24 -days 900 -post http://127.0.0.1:18084 \
  -auth-token "$TOKEN" -batch-days 30 >"$WORK/replay.log" 2>&1 &
REPLAY_PID=$!
sleep 1.5
kill -9 "${SHARD_PID[0]}" 2>/dev/null || true
echo "cluster-smoke: SIGKILLed shard0 mid-replay"
wait "$REPLAY_PID" 2>/dev/null || true # replay may abort on 503s — expected

# Restart shard0 from its WAL + snapshot spill: every batch it
# acknowledged before the kill must already be back before we redeliver.
start_shard 0
wait_ready http://127.0.0.1:18081 300
# The first boot logs a "wal recovered" record with vehicles=0 over an
# empty WAL; the restart must have recovered a non-empty store from the
# journal.
if ! grep -Eq '"msg":"wal recovered".*"vehicles":[1-9]' "$WORK/shard0.log"; then
  echo "cluster-smoke: FAIL — restarted shard0 did not replay its WAL" >&2
  cat "$WORK/shard0.log" >&2
  exit 1
fi
echo "cluster-smoke: shard0 restarted from WAL replay"

# Redeliver the full replay: batches the dead shard never acknowledged
# land now; everything it *did* acknowledge is an idempotent no-op.
"$WORK/fleetgen" -vehicles 24 -days 900 -post http://127.0.0.1:18084 \
  -auth-token "$TOKEN" >"$WORK/replay2.log" 2>&1
retrain_settled http://127.0.0.1:18084

# 1. Merged forecasts equal the single-process output byte for byte.
curl -fsS http://127.0.0.1:18084/fleet/forecast >"$WORK/cluster.json"
if ! cmp -s "$WORK/single.json" "$WORK/cluster.json"; then
  echo "cluster-smoke: FAIL — sharded /fleet/forecast differs from single-process after crash recovery" >&2
  diff "$WORK/single.json" "$WORK/cluster.json" | head >&2 || true
  exit 1
fi
echo "cluster-smoke: merged forecasts are byte-identical to single-process (through a mid-replay SIGKILL)"

# 1b. The generation-keyed read path: a second (merge-cached) read
# serves the same bytes, a conditional GET holding the merged ETag gets
# an empty 304, and a mixed conditional read soak leaves the bytes
# untouched while the router's merge cache takes hits.
curl -fsS http://127.0.0.1:18084/fleet/forecast >"$WORK/cluster-warm.json"
if ! cmp -s "$WORK/cluster.json" "$WORK/cluster-warm.json"; then
  echo "cluster-smoke: FAIL — warm merge-cached /fleet/forecast differs from the cold read" >&2
  exit 1
fi
ETAG=$(curl -fsS -D - -o /dev/null http://127.0.0.1:18084/fleet/forecast |
  tr -d '\r' | awk -F': ' 'tolower($1)=="etag"{print $2}')
if [ -z "$ETAG" ]; then
  echo "cluster-smoke: FAIL — merged /fleet/forecast carries no ETag" >&2
  exit 1
fi
COND=$(curl -s -o "$WORK/cond-body" -w '%{http_code}' \
  -H "If-None-Match: $ETAG" http://127.0.0.1:18084/fleet/forecast)
if [ "$COND" != "304" ] || [ -s "$WORK/cond-body" ]; then
  echo "cluster-smoke: FAIL — conditional GET with current ETag got $COND (body $(wc -c <"$WORK/cond-body") bytes), want empty 304" >&2
  exit 1
fi
"$WORK/fleetgen" soak -read -target http://127.0.0.1:18084 \
  -read-mix 60/30/10 -conditional -concurrency 2 -duration 2s \
  >"$WORK/soak-read.log" 2>&1
grep 'soak read' "$WORK/soak-read.log" | sed 's/^/cluster-smoke: /'
N304=$(sed -n 's/.* \([0-9][0-9]*\) x 304.*/\1/p' "$WORK/soak-read.log" | head -1)
if [ -z "$N304" ] || [ "$N304" -lt 1 ]; then
  echo "cluster-smoke: FAIL — conditional read soak produced no 304s" >&2
  cat "$WORK/soak-read.log" >&2
  exit 1
fi
MERGE_HITS=$(curl -fsS http://127.0.0.1:18084/metrics |
  awk '$1 == "fleet_router_merge_cache_hits" {print $2}')
if [ -z "$MERGE_HITS" ] || [ "${MERGE_HITS%.*}" -lt 1 ]; then
  echo "cluster-smoke: FAIL — router merge cache took no hits under the read soak (fleet_router_merge_cache_hits=$MERGE_HITS)" >&2
  exit 1
fi
curl -fsS http://127.0.0.1:18084/fleet/forecast >"$WORK/cluster-postsoak.json"
if ! cmp -s "$WORK/cluster.json" "$WORK/cluster-postsoak.json"; then
  echo "cluster-smoke: FAIL — /fleet/forecast bytes drifted across the read soak" >&2
  exit 1
fi
echo "cluster-smoke: read path — warm bytes identical, 304 on current ETag, $N304 soak 304s, merge-cache hits $MERGE_HITS"

# 2. Raw telemetry partitions ~1/N: per-shard stores are disjoint
# slices summing to the fleet, and no shard holds everything.
TOTAL=0
for i in 0 1 2; do
  N=$(curl -fsS "http://127.0.0.1:1808$((i + 1))/admin/ingest" |
    sed -n 's/.*"vehicles":\([0-9]*\).*/\1/p' | head -1)
  echo "cluster-smoke: shard$i stores $N vehicles"
  if [ -z "$N" ] || [ "$N" -ge 24 ]; then
    echo "cluster-smoke: FAIL — shard$i stores $N of 24 vehicles (telemetry not partitioned)" >&2
    exit 1
  fi
  TOTAL=$((TOTAL + N))
done
if [ "$TOTAL" -ne 24 ]; then
  echo "cluster-smoke: FAIL — shard stores hold $TOTAL vehicles total, want a disjoint 24" >&2
  exit 1
fi
echo "cluster-smoke: raw telemetry partitions 1/N (24 vehicles across 3 disjoint stores)"

# 3. Zero acknowledged loss: SIGKILL shard1 now that every report is
# acknowledged, restart it from WAL + spill, and require identical
# bytes with NO redelivery.
kill -9 "${SHARD_PID[1]}" 2>/dev/null || true
start_shard 1
wait_ready http://127.0.0.1:18082 300
retrain_settled http://127.0.0.1:18084
curl -fsS http://127.0.0.1:18084/fleet/forecast >"$WORK/cluster-restored.json"
if ! cmp -s "$WORK/single.json" "$WORK/cluster-restored.json"; then
  echo "cluster-smoke: FAIL — acknowledged reports lost across SIGKILL (forecasts drifted)" >&2
  diff "$WORK/single.json" "$WORK/cluster-restored.json" | head >&2 || true
  exit 1
fi
echo "cluster-smoke: SIGKILLed shard restarted with zero acknowledged reports lost"

# 4. Per-vehicle affinity: the router names the owning shard.
SHARD_HDR=$(curl -fsS -D - -o /dev/null http://127.0.0.1:18084/vehicles/v01/forecast |
  tr -d '\r' | awk -F': ' 'tolower($1)=="x-fleet-shard"{print $2}')
case "$SHARD_HDR" in
  shard0 | shard1 | shard2) echo "cluster-smoke: v01 served by $SHARD_HDR" ;;
  *)
    echo "cluster-smoke: FAIL — missing/unknown X-Fleet-Shard header: '$SHARD_HDR'" >&2
    exit 1
    ;;
esac

# 5. The router-level guard rejects bad credentials.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Authorization: Bearer wrong' -H 'Content-Type: application/json' \
  -d '{"reports":[]}' http://127.0.0.1:18084/telemetry)
if [ "$CODE" != "401" ]; then
  echo "cluster-smoke: FAIL — bad token got $CODE, want 401" >&2
  exit 1
fi
echo "cluster-smoke: bad bearer token rejected with 401"

# 6. WAL stats surface end to end (server JSON and fleetctl ingest).
if ! curl -fsS http://127.0.0.1:18081/admin/ingest | grep -q '"wal"'; then
  echo "cluster-smoke: FAIL — /admin/ingest has no WAL stats" >&2
  exit 1
fi
"$WORK/fleetctl" ingest -url http://127.0.0.1:18081 >"$WORK/fleetctl-ingest.txt"
if ! grep -q "segments" "$WORK/fleetctl-ingest.txt"; then
  echo "cluster-smoke: FAIL — fleetctl ingest printed no WAL section" >&2
  cat "$WORK/fleetctl-ingest.txt" >&2
  exit 1
fi
echo "cluster-smoke: WAL stats visible via /admin/ingest and fleetctl ingest"

# 7. One router scrape sees the whole cluster: every line is a comment
# or a `name{labels} value` sample, every shard reports up, and the
# relabeled histograms (route latency, training stages, WAL fsync) are
# all present.
curl -fsS http://127.0.0.1:18084/metrics >"$WORK/metrics.txt"
if grep -vE '^#' "$WORK/metrics.txt" |
  grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eE]+$' | grep -q .; then
  echo "cluster-smoke: FAIL — /metrics has unparseable lines:" >&2
  grep -vE '^#' "$WORK/metrics.txt" |
    grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eE]+$' | head >&2
  exit 1
fi
for i in 0 1 2; do
  if ! grep -q "fleet_shard_up{shard=\"shard$i\"} 1" "$WORK/metrics.txt"; then
    echo "cluster-smoke: FAIL — fleet_shard_up for shard$i is not 1" >&2
    grep fleet_shard_up "$WORK/metrics.txt" >&2 || true
    exit 1
  fi
done
for series in fleet_http_request_seconds_bucket fleet_train_stage_seconds_bucket fleet_wal_fsync_seconds_bucket fleet_shard_call_seconds_bucket; do
  if ! grep -q "^$series" "$WORK/metrics.txt"; then
    echo "cluster-smoke: FAIL — /metrics is missing $series" >&2
    exit 1
  fi
done
"$WORK/fleetctl" metrics -url http://127.0.0.1:18084 >"$WORK/fleetctl-metrics.txt"
if ! grep -q "p99" "$WORK/fleetctl-metrics.txt"; then
  echo "cluster-smoke: FAIL — fleetctl metrics printed no latency quantiles" >&2
  cat "$WORK/fleetctl-metrics.txt" >&2
  exit 1
fi
echo "cluster-smoke: /metrics parses, all shards up, histograms present, fleetctl metrics prints quantiles"

# 8. Trace propagation: one scatter request through the router echoes a
# trace ID and the same ID appears in the router's and every shard's
# structured log (shards adopt it from the X-Fleet-Trace header).
TRACE=$(curl -fsS -D - -o /dev/null http://127.0.0.1:18084/vehicles |
  tr -d '\r' | awk -F': ' 'tolower($1)=="x-fleet-trace"{print $2}')
if [ -z "$TRACE" ]; then
  echo "cluster-smoke: FAIL — router echoed no X-Fleet-Trace header" >&2
  exit 1
fi
for log in router.log shard0.log shard1.log shard2.log; do
  found=0
  for _ in $(seq 20); do # shard log lines may flush just after the response
    if grep -q "$TRACE" "$WORK/$log"; then
      found=1
      break
    fi
    sleep 0.1
  done
  if [ "$found" != 1 ]; then
    echo "cluster-smoke: FAIL — trace $TRACE missing from $log" >&2
    tail -5 "$WORK/$log" >&2
    exit 1
  fi
done
echo "cluster-smoke: trace $TRACE visible in router and all shard logs"

# 9. Binary-wire soak burst through the router: framed batches hit the
# guarded /telemetry, the router splits raw groups to ring owners
# without re-encoding, and every report the doors acknowledged must be
# applied — zero acknowledged loss on the durable HTTP path. This runs
# AFTER the byte-compare assertions: soak vehicles are new store
# content the single-process reference never saw.
"$WORK/fleetgen" soak -target http://127.0.0.1:18084 -transport binary \
  -auth-token "$TOKEN" -vehicles 50 -batch 100 -concurrency 2 \
  -duration 2s >"$WORK/soak-binary.log" 2>&1
if ! grep -q 'acknowledged loss 0 (must be 0)' "$WORK/soak-binary.log"; then
  echo "cluster-smoke: FAIL — binary soak burst lost acknowledged reports" >&2
  cat "$WORK/soak-binary.log" >&2
  exit 1
fi
grep 'soak binary:' "$WORK/soak-binary.log" | sed 's/^/cluster-smoke: /'
echo "cluster-smoke: binary soak through the router — zero acknowledged loss"

# 10. UDP burst, LAST: datagrams bypass the ring entirely (they apply
# straight into the receiving shard's store), so nothing below may
# compare stores against the reference. Fire at shard0's UDP door and
# require the datagram counter to move with zero frame/apply errors on
# a clean localhost path.
"$WORK/fleetgen" soak -target http://127.0.0.1:18081 -transport udp \
  -udp-addr 127.0.0.1:19081 -vehicles 50 -batch 100 -concurrency 1 \
  -duration 2s >"$WORK/soak-udp.log" 2>&1
grep 'soak udp:' "$WORK/soak-udp.log" | sed 's/^/cluster-smoke: /'
curl -fsS http://127.0.0.1:18081/metrics >"$WORK/metrics-udp.txt"
UDP_SEEN=$(awk '$1 == "fleet_udp_datagrams" {print $2}' "$WORK/metrics-udp.txt")
if [ -z "$UDP_SEEN" ] || [ "${UDP_SEEN%.*}" -lt 1 ]; then
  echo "cluster-smoke: FAIL — shard0's UDP door saw no datagrams (fleet_udp_datagrams=$UDP_SEEN)" >&2
  exit 1
fi
for m in fleet_udp_frame_errors fleet_udp_apply_errors; do
  V=$(awk -v m="$m" '$1 == m {print $2}' "$WORK/metrics-udp.txt")
  if [ -n "$V" ] && [ "${V%.*}" -gt 0 ]; then
    echo "cluster-smoke: FAIL — $m = $V after a clean localhost UDP burst" >&2
    exit 1
  fi
done
echo "cluster-smoke: UDP door ingested $UDP_SEEN datagrams with zero frame/apply errors"

echo "cluster-smoke: PASS"
