#!/bin/sh
# Runs the ML split-engine benchmarks and emits the results as JSON, so
# the perf trajectory of the tree learners is tracked from PR 3 on.
#
# Usage:  scripts/bench_ml.sh [output.json]
#   BENCHTIME=2s scripts/bench_ml.sh BENCH_ml.json
#
# The output is one JSON run record:
#   {"benchtime": "...", "goos": "...", "results": [{"name": ...,
#    "iterations": N, "ns_per_op": ..., "b_per_op": ..., "allocs_per_op": ...}]}
# The committed BENCH_ml.json keeps an array of such records (one per
# measurement point, e.g. pre/post an optimization PR); CI uploads the
# current run as an artifact.
set -eu

OUT=${1:-BENCH_ml.json}
BENCHTIME=${BENCHTIME:-1x}
PATTERN='^(BenchmarkTreeFit|BenchmarkForestFit|BenchmarkGBMFit|BenchmarkTrainRF|BenchmarkTrainXGB|BenchmarkGridSearchCV)$'

NUM_CPU=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo null) | head -1)

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$TMP"

awk -v benchtime="$BENCHTIME" -v num_cpu="$NUM_CPU" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    # The -N suffix testing appends to every benchmark name IS the
    # GOMAXPROCS the run used; record it before stripping.
    if (match(name, /-[0-9]+$/)) gomaxprocs = substr(name, RSTART + 1)
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    b = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") b = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (n++) results = results ",\n"
    results = results sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, b == "" ? "null" : b, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"num_cpu\": %s,\n  \"gomaxprocs\": %s,\n  \"results\": [\n%s\n  ]\n}\n", benchtime, goos, goarch, cpu, num_cpu == "" ? "null" : num_cpu, gomaxprocs == "" ? (n ? "1" : "null") : gomaxprocs, results
}' "$TMP" > "$OUT"

echo "wrote $OUT"
