#!/bin/sh
# Runs the telemetry-ingest benchmarks (the JSON, binary-HTTP and UDP
# doors at the canonical 100-report batch) and emits the results as
# JSON — the ingest counterpart of scripts/bench_serve.sh.
#
# Usage:  scripts/bench_ingest.sh [output.json]
#   BENCHTIME=2s scripts/bench_ingest.sh BENCH_ingest.json
#
# The output is one JSON run record; the committed BENCH_ingest.json
# keeps an array of such records (the first entry is the pre-binary
# baseline, so the JSON-vs-binary gap stays measured, not guessed).
# Each result row carries reports/sec alongside ns/op and allocs/op;
# allocs/report is allocs_per_op divided by the batch size in the name.
set -eu

OUT=${1:-BENCH_ingest.json}
BENCHTIME=${BENCHTIME:-1s}
PATTERN='^BenchmarkTelemetryIngest$'

NUM_CPU=$( (nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo null) | head -1)

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" ./internal/serve | tee "$TMP"

awk -v benchtime="$BENCHTIME" -v num_cpu="$NUM_CPU" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    # The -N suffix testing appends to every benchmark name IS the
    # GOMAXPROCS the run used; record it before stripping.
    if (match(name, /-[0-9]+$/)) gomaxprocs = substr(name, RSTART + 1)
    # (no suffix means the run used GOMAXPROCS=1 — testing omits -1)
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    b = ""; allocs = ""; rps = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") b = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
        if ($(i) == "reports/s") rps = $(i - 1)
    }
    if (n++) results = results ",\n"
    results = results sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s, \"reports_per_sec\": %s}", name, iters, ns, b == "" ? "null" : b, allocs == "" ? "null" : allocs, rps == "" ? "null" : rps)
}
END {
    printf "{\n  \"benchtime\": \"%s\",\n  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"num_cpu\": %s,\n  \"gomaxprocs\": %s,\n  \"results\": [\n%s\n  ]\n}\n", benchtime, goos, goarch, cpu, num_cpu == "" ? "null" : num_cpu, gomaxprocs == "" ? (n ? "1" : "null") : gomaxprocs, results
}' "$TMP" > "$OUT"

echo "wrote $OUT"
