// Fleetplanner: the dispatcher workflow the paper's introduction
// motivates. Forecast the next maintenance of every old vehicle with the
// per-vehicle models of §4.3, then pack the forecasts into a workshop
// schedule under daily capacity constraints (the §6 scheduling
// extension).
//
// Run with: go run ./examples/fleetplanner
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/sched"
	"repro/internal/telematics"
)

func main() {
	log.SetFlags(0)

	cfg := telematics.DefaultFleetConfig()
	cfg.Vehicles = 18
	cfg.Days = 1400
	fleet, err := telematics.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	pcfg := core.DefaultPredictorConfig()
	pcfg.Window = 6
	predictor, err := core.NewFleetPredictor(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	var lastStart = fleet.Vehicles[0].Start
	for _, v := range fleet.Vehicles {
		prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, cfg.Allowance)
		if err != nil {
			log.Fatal(err)
		}
		if err := predictor.AddVehicle(prep.Series, prep.Start); err != nil {
			log.Fatal(err)
		}
	}
	statuses, err := predictor.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-vehicle model selection (validation EMRE on the last 29 days):")
	for _, st := range statuses {
		val := "-"
		if !math.IsNaN(st.ValidationMRE) {
			val = fmt.Sprintf("%.2f d", st.ValidationMRE)
		}
		fmt.Printf("  %s: %-4s (%s)\n", st.ID, st.Algorithm, val)
	}

	forecasts, err := predictor.PredictAll()
	if err != nil {
		log.Fatal(err)
	}

	// Turn forecasts into maintenance requests. Forecast uncertainty is
	// taken from each vehicle's validation error: vehicles with noisier
	// models get wider anticipation windows.
	horizonStart := lastStart.AddDate(0, 0, cfg.Days)
	var requests []sched.Request
	for _, fc := range forecasts {
		var unc int
		for _, st := range statuses {
			if st.ID == fc.VehicleID && !math.IsNaN(st.ValidationMRE) {
				unc = int(math.Ceil(st.ValidationMRE))
			}
		}
		requests = append(requests, sched.Request{
			VehicleID:   fc.VehicleID,
			Due:         fc.DueDate,
			Uncertainty: unc,
		})
	}

	plan, err := sched.Schedule(requests, sched.Config{
		Capacity: 2, // two workshop bays
		Start:    horizonStart,
		Horizon:  240,
		MaxLead:  7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nworkshop plan (2 bays/day):")
	for _, a := range plan.Assignments {
		fmt.Printf("  %s  %s  (%d days early)\n", a.Day.Format("2006-01-02"), a.VehicleID, a.LeadDays)
	}
	for _, id := range plan.Unschedulable {
		fmt.Printf("  UNSCHEDULABLE: %s (outside horizon or no capacity)\n", id)
	}
	n, lead, peak := plan.Utilization()
	fmt.Printf("\nscheduled %d/%d vehicles, mean anticipation %.1f days, peak daily load %d\n",
		n, len(requests), lead, peak)
}
