// Coldstart: the §4.4 workflow for vehicles without a completed
// maintenance cycle. A fleet of old vehicles donates first-cycle data;
// one held-out vehicle plays the semi-new newcomer. The example compares
// the paper's three strategies — per-vehicle baseline, Unified model,
// and Similarity-based model — on the newcomer's first cycle.
//
// Run with: go run ./examples/coldstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)

	cfg := telematics.DefaultFleetConfig()
	cfg.Vehicles = 12
	cfg.Days = 1300
	fleet, err := telematics.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var series []*timeseries.VehicleSeries
	for _, v := range fleet.Vehicles {
		prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, cfg.Allowance)
		if err != nil {
			log.Fatal(err)
		}
		if c, ok := prep.Series.FirstCycle(); ok && c.Complete {
			series = append(series, prep.Series)
		}
	}
	if len(series) < 3 {
		log.Fatal("need at least 3 vehicles with a complete first cycle")
	}

	// The last vehicle plays the semi-new newcomer; the rest donate
	// their first cycles as training data.
	newcomer := series[len(series)-1]
	donors := series[:len(series)-1]
	fmt.Printf("newcomer: %s — evaluating on the second half of its first cycle\n", newcomer.ID)
	fmt.Printf("donors:   %d old vehicles (first cycles only)\n\n", len(donors))

	csCfg := core.NewColdStartConfig()
	d := core.DefaultDTilde()

	// Strategy 1: baseline from the newcomer's own first-half average.
	if rep, err := core.EvaluateSemiNewBaseline(newcomer, csCfg); err != nil {
		log.Printf("baseline: %v", err)
	} else {
		fmt.Printf("%-28s EMRE(1..29) = %5.1f days\n", "baseline (own average)", rep.MRE(d))
	}

	// Strategy 2: one unified model over every donor's first cycle.
	for _, alg := range core.TrainedAlgorithms() {
		model, err := core.TrainUnified(donors, alg, csCfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.EvaluateSemiNew(model, string(alg)+"_Uni", newcomer, csCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s EMRE(1..29) = %5.1f days\n", "unified "+string(alg), rep.MRE(d))
	}

	// Strategy 3: train only on the most similar donor.
	for _, alg := range core.TrainedAlgorithms() {
		model, donor, err := core.TrainSimilarity(newcomer, donors, alg, csCfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.EvaluateSemiNew(model, string(alg)+"_Sim", newcomer, csCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s EMRE(1..29) = %5.1f days (donor %s)\n", "similarity "+string(alg), rep.MRE(d), donor)
	}

	// For a brand-new vehicle (first half of the first cycle) only the
	// unified model applies; the paper compares by global error there.
	fmt.Println()
	model, err := core.TrainUnified(donors, core.XGB, csCfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.EvaluateNew(model, "XGB_Uni", newcomer, csCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new-phase (first half) XGB_Uni EGlobal = %.1f days over %d days\n",
		rep.Global(), len(rep.Predictions))
}
