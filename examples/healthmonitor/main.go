// Healthmonitor: the two companion analyses the paper's introduction
// describes alongside maintenance prediction — component-malfunction
// detection on CAN signals (refs [6, 15]) and future-usage forecasting
// (refs [7, 10]) — running on one vehicle's telemetry.
//
// A vehicle works normally for several days, then its oil pressure
// starts slipping (a wear fault below the hard alarm limit). The
// monitor (1) detects the drift from controller reports, and (2) uses
// the usage forecaster to estimate how many working days remain before
// the maintenance allowance runs out, so the dispatcher can combine
// "component is degrading" with "maintenance is due anyway in N days".
//
// Run with: go run ./examples/healthmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/anomaly"
	"repro/internal/forecast"
	"repro/internal/rng"
	"repro/internal/telematics"
	"repro/internal/timeseries"
)

func main() {
	log.SetFlags(0)

	const vehicle = "v17"
	rnd := rng.New(99)

	// --- CAN-level monitoring -------------------------------------
	gen, err := telematics.NewFrameGen(vehicle, telematics.DefaultFrameGenConfig(), rnd)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := telematics.NewController(vehicle, 10*time.Minute, telematics.DefaultFrameGenConfig().Rate)
	if err != nil {
		log.Fatal(err)
	}
	day0 := time.Date(2019, time.September, 2, 7, 0, 0, 0, time.UTC)
	var reports []telematics.SummaryReport
	for day := 0; day < 10; day++ {
		gen.Session(day0.AddDate(0, 0, day), 90*time.Minute, func(f telematics.Frame) bool {
			if day >= 7 {
				// Wear fault: oil pressure slips ~35 % but stays above
				// the hard alarm limit.
				f.OilPressure *= 0.65
			}
			if err := ctrl.Ingest(f); err != nil {
				log.Fatal(err)
			}
			return true
		})
		reports = append(reports, ctrl.Flush()...)
	}

	hard := anomaly.CheckLimits(reports, anomaly.DefaultLimits())
	fmt.Printf("hard-limit violations: %d\n", len(hard))

	// Min/max statistics over long full-work periods have a very tight
	// spread (extreme-value statistics), so a wider z-threshold is
	// appropriate; the injected fault sits at |z| ≈ 80 either way.
	driftCfg := anomaly.DefaultDriftConfig()
	driftCfg.Threshold = 10
	drifts, err := anomaly.DetectDrift(reports, driftCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drift findings: %d\n", len(drifts))
	for i, f := range drifts {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(drifts)-5)
			break
		}
		fmt.Printf("  %s\n", f)
	}

	// --- Usage forecasting -----------------------------------------
	// Daily utilization history: weekday work, weekends off.
	u := make(timeseries.Series, 300)
	for i := range u {
		if i%7 >= 5 {
			u[i] = 0
		} else {
			u[i] = 21000 * (1 + 0.08*rnd.NormFloat64())
		}
	}
	fc := forecast.New(forecast.DefaultConfig())
	if err := fc.Fit(u); err != nil {
		log.Fatal(err)
	}
	next, err := fc.Horizon(u, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnext 7 days of forecast utilization [s]:")
	for i, v := range next {
		fmt.Printf("  day +%d: %7.0f\n", i+1, v)
	}

	// Cross-check the maintenance deadline with the usage model: how
	// long until the remaining allowance is consumed?
	vs, err := timeseries.Derive(vehicle, u, timeseries.DefaultAllowance)
	if err != nil {
		log.Fatal(err)
	}
	lastDay := len(vs.U) - 1
	left := vs.L[lastDay] - vs.U[lastDay]
	if left < 0 {
		left = 0
	}
	days, err := fc.DaysToExhaust(u, left, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremaining allowance: %.0f s -> forecast exhausted in %d days\n", left, days)
	if len(drifts) > 0 {
		fmt.Println("recommendation: oil-pressure drift detected — bring maintenance forward")
	}
}
