// Canbus: the data-acquisition path of §3 at frame level. A vehicle's
// Machine Control System emits CAN frames at ~100 Hz during two work
// sessions; the on-board controller aggregates them into periodic
// summary reports; the cloud collector reduces the reports to the daily
// utilization series the predictor consumes.
//
// Run with: go run ./examples/canbus
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dataprep"
	"repro/internal/rng"
	"repro/internal/telematics"
)

func main() {
	log.SetFlags(0)

	const vehicle = "v42"
	gen, err := telematics.NewFrameGen(vehicle, telematics.DefaultFrameGenConfig(), rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := telematics.NewController(vehicle, 10*time.Minute, telematics.DefaultFrameGenConfig().Rate)
	if err != nil {
		log.Fatal(err)
	}

	// Two work sessions on consecutive days (shortened so the example
	// runs instantly; production sessions span hours).
	day1 := time.Date(2019, time.June, 3, 7, 30, 0, 0, time.UTC)
	day2 := day1.AddDate(0, 0, 1)
	frames := 0
	for _, session := range []struct {
		start time.Time
		dur   time.Duration
	}{
		{day1, 45 * time.Minute},
		{day1.Add(5 * time.Hour), 30 * time.Minute},
		{day2, 65 * time.Minute},
	} {
		frames += gen.Session(session.start, session.dur, func(f telematics.Frame) bool {
			if err := ctrl.Ingest(f); err != nil {
				log.Fatal(err)
			}
			return true
		})
	}
	reports := ctrl.Flush()
	fmt.Printf("ingested %d frames -> %d summary reports\n\n", frames, len(reports))

	collector := telematics.NewCollector()
	fmt.Printf("%-20s %9s %8s %8s %9s\n", "period", "work[s]", "rpm", "oil-min", "cool-max")
	for _, r := range reports {
		fmt.Printf("%-20s %9.1f %8.0f %8.1f %9.1f\n",
			r.PeriodStart.Format("2006-01-02 15:04"), r.WorkSeconds, r.AvgEngineSpeed, r.MinOilPressure, r.MaxCoolantTemp)
		if err := collector.Receive(r); err != nil {
			log.Fatal(err)
		}
	}

	start, daily, err := collector.DailySeries(vehicle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaily utilization series from %s:\n", start.Format("2006-01-02"))
	for t, v := range daily {
		fmt.Printf("  day %d: %.1f s\n", t, v)
	}

	// The same series then flows into the standard preparation pipeline.
	var obs []dataprep.Observation
	for _, r := range reports {
		obs = append(obs, dataprep.Observation{At: r.PeriodStart, Seconds: r.WorkSeconds})
	}
	aggStart, agg, err := dataprep.AggregateDaily(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndataprep.AggregateDaily cross-check from %s: %v\n", aggStart.Format("2006-01-02"), agg)
}
