// Quickstart: simulate a small fleet, run the preparation pipeline,
// train the category-appropriate predictor per vehicle, and print the
// forecast next-maintenance date for every vehicle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataprep"
	"repro/internal/telematics"
)

func main() {
	log.SetFlags(0)

	// 1. Acquire data. In production this comes from the CAN bus through
	// the cloud collector; here the simulator stands in for the fleet.
	cfg := telematics.DefaultFleetConfig()
	cfg.Vehicles = 6
	cfg.Days = 1000
	cfg.Corrupt = true // exercise the cleaning step
	fleet, err := telematics.GenerateFleet(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Prepare: clean, derive the U/C/L/D series, enrich.
	predictor, err := core.NewFleetPredictor(core.DefaultPredictorConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range fleet.Vehicles {
		prep, err := dataprep.Prepare(v.Profile.ID, v.Start, v.RawU, cfg.Allowance)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s): %d days, %d values repaired, category %s\n",
			prep.ID, v.Profile.Class, len(prep.Series.U), prep.Clean.Total(), core.Categorize(prep.Series))
		if err := predictor.AddVehicle(prep.Series, prep.Start); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Train one model per vehicle (per-vehicle for old vehicles,
	// similarity/unified for semi-new and new ones).
	statuses, err := predictor.Train()
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range statuses {
		fmt.Printf("trained %s: strategy=%s algorithm=%s\n", st.ID, st.Strategy, st.Algorithm)
	}

	// 4. Forecast the next maintenance for the whole fleet.
	forecasts, err := predictor.PredictAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnext-maintenance forecast:")
	for _, fc := range forecasts {
		fmt.Printf("  %s: %.0f days left -> due %s\n", fc.VehicleID, fc.DaysLeft, fc.DueDate.Format("2006-01-02"))
	}
}
